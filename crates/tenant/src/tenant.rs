//! Per-tenant configuration.

/// How one tenant behaves and what share of the device it is promised.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantConfig {
    /// Weighted-share scheduling weight (≥ 1). A tenant with weight 2
    /// is promised twice the walker-engine time of a weight-1 tenant
    /// under [`ArbiterPolicy::WeightedShare`](crate::ArbiterPolicy).
    pub weight: u32,
    /// Strict-priority class — higher wins under
    /// [`ArbiterPolicy::StrictPriority`](crate::ArbiterPolicy).
    pub priority: u8,
    /// Per-tenant transmit-window depth override (packets in flight);
    /// `None` uses the run's default depth.
    pub depth: Option<usize>,
    /// A paused tenant sends nothing: its queues stay programmed and
    /// its RX buffers posted, but no traffic ever enters them.
    pub paused: bool,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            weight: 1,
            priority: 0,
            depth: None,
            paused: false,
        }
    }
}

impl TenantConfig {
    /// A noisy neighbor: top strict-priority class and a transmit
    /// window twice the run default (capped by the caller at the ring),
    /// so it saturates whatever share the arbiter policy lets it take.
    pub fn noisy() -> Self {
        TenantConfig {
            weight: 1,
            priority: 7,
            depth: Some(32),
            paused: false,
        }
    }

    /// An idle tenant: fully brought up, never sends.
    pub fn idle() -> Self {
        TenantConfig {
            paused: true,
            ..TenantConfig::default()
        }
    }

    /// The run's transmit-window depth for this tenant.
    pub fn depth_or(&self, default: usize) -> usize {
        self.depth.unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_uniform_equal_share() {
        let c = TenantConfig::default();
        assert_eq!(c.weight, 1);
        assert_eq!(c.priority, 0);
        assert_eq!(c.depth_or(16), 16);
        assert!(!c.paused);
    }

    #[test]
    fn presets() {
        let n = TenantConfig::noisy();
        assert!(n.priority > TenantConfig::default().priority);
        assert_eq!(n.depth_or(16), 32);
        assert!(TenantConfig::idle().paused);
    }
}
