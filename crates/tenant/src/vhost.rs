//! The per-tenant vhost worker thread.
//!
//! In a vhost/vDPA deployment each guest's virtio queues are serviced
//! by a dedicated host kernel thread: the guest's doorbell vmexits into
//! an eventfd kick, the worker wakes, copies the frame across the
//! guest/host boundary, and relays the doorbell to the real device; on
//! completion the worker copies back and injects the guest's interrupt.
//! This module models that thread as its own simulated core — a
//! [`CostEngine`] with an independently derived noise stream plus a
//! `free` scalar — so a busy worker genuinely queues its tenant's kicks
//! behind each other, instead of folding the cost into the guest's
//! timeline the way the old `vhost_overlay` testbed bool did.

use vf_sim::{NoiseModel, SimRng, Time};

use vf_hostsw::{CostEngine, HostCosts};

/// RNG-derivation tag base for per-tenant worker cost streams. Guest
/// vCPUs draw from `multicore`'s base 10 (up to 10+63 for 64 tenants)
/// and per-queue payload streams from base 100, so workers start at
/// 1000 to stay disjoint at every supported scale.
pub const WORKER_RNG_TAG_BASE: u64 = 1000;

/// One tenant's vhost worker thread.
#[derive(Clone, Debug)]
pub struct VhostWorker {
    /// CPU-time model for the worker's own core.
    pub cost: CostEngine,
    /// Instant the worker finishes its current relay.
    pub free: Time,
}

impl VhostWorker {
    /// Build the worker for tenant `index`, deriving its noise stream
    /// from `rng` at [`WORKER_RNG_TAG_BASE`]` + index`.
    pub fn new(index: u16, costs: &HostCosts, noise: &NoiseModel, rng: &SimRng) -> Self {
        VhostWorker {
            cost: CostEngine::new(
                costs.clone(),
                noise.clone(),
                rng.derive(WORKER_RNG_TAG_BASE + index as u64),
            ),
            free: Time::ZERO,
        }
    }

    /// A TX kick lands at `kick_at` for a `bytes`-sized frame: the
    /// worker starts when free, runs its wakeup + guest→host copy, and
    /// returns the instant it can ring the device doorbell.
    pub fn tx(&mut self, kick_at: Time, bytes: usize) -> Time {
        let start = kick_at.max(self.free);
        self.free = start + self.cost.vhost_worker_tx(bytes);
        self.free
    }

    /// A device completion interrupt lands at `irq_at` for a
    /// `bytes`-sized frame: the worker runs its host→guest copy +
    /// interrupt injection and returns the instant the guest's vCPU
    /// sees the injected interrupt.
    pub fn rx(&mut self, irq_at: Time, bytes: usize) -> Time {
        let start = irq_at.max(self.free);
        self.free = start + self.cost.vhost_worker_rx(bytes);
        self.free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(index: u16) -> VhostWorker {
        VhostWorker::new(
            index,
            &HostCosts::fedora37(),
            &NoiseModel::noiseless(),
            &SimRng::new(7),
        )
    }

    #[test]
    fn busy_worker_queues_kicks() {
        let mut w = worker(0);
        let d1 = w.tx(Time::from_us(10), 256);
        assert!(d1 > Time::from_us(10));
        // A kick arriving mid-relay starts only when the worker frees.
        let d2 = w.tx(Time::from_us(10), 256);
        assert!(d2 > d1);
        // An idle worker starts at the kick.
        let d3 = w.tx(d2 + Time::from_ms(1), 256);
        assert!(d3 > d2 + Time::from_ms(1));
    }

    #[test]
    fn workers_draw_independent_streams() {
        // Same derivation seed → identical; different index → the
        // relay costs come from a different stream but the same model.
        let mut a = worker(0);
        let mut b = worker(0);
        assert_eq!(a.tx(Time::ZERO, 256), b.tx(Time::ZERO, 256));
        let mut c = worker(1);
        let _ = c.rx(Time::ZERO, 256);
        // Tenant 0's stream is untouched by tenant 1's draws.
        assert_eq!(a.rx(a.free, 256), b.rx(b.free, 256));
    }
}
