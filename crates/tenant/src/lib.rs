//! # vf-tenant — multi-tenant vhost backend model
//!
//! The building blocks for experiment E21: M simulated guest VMs, each
//! driving its own virtio-net front end, multiplexed onto one physical
//! FPGA device the way a vhost/vDPA backend does (Virtio-FPGA, arxiv
//! 2304.01721):
//!
//! * [`tenant`] — per-tenant configuration: scheduling weight, strict
//!   priority, transmit-window depth, paused/noisy-neighbor presets;
//! * [`vhost`] — the per-tenant vhost worker thread: its own simulated
//!   core and cost stream, serializing the guest-kick → ring-copy →
//!   doorbell relay (TX) and the completion-copy → irq-inject relay
//!   (RX);
//! * [`arbiter`] — the device-side QoS arbiter that grants the shared
//!   descriptor-walker engine to one tenant's doorbell at a time, under
//!   a pluggable policy (round-robin, weighted-share, strict-priority).
//!
//! The worlds that wire these into the testbed live in
//! `virtio-fpga::tenant`; this crate stays policy/mechanism only so the
//! arbiter can be unit-tested without a device model.

#![warn(missing_docs)]

pub mod arbiter;
pub mod tenant;
pub mod vhost;

pub use arbiter::{ArbiterPolicy, Decision, QosArbiter, TenantClass};
pub use tenant::TenantConfig;
pub use vhost::{VhostWorker, WORKER_RNG_TAG_BASE};
