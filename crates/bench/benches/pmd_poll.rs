//! Criterion bench for **E15/E16** — the `vf-pmd` poll-mode driver.
//!
//! Two groups:
//!
//! * `pmd_roundtrip` — simulation throughput of the PMD world next to
//!   the kernel VirtIO world at the same payloads, plus the E15 summary
//!   rows printed once at scale;
//! * `pmd_ring_batch` — the batched descriptor APIs in isolation
//!   (`publish_batch`/`pop_used_batch` round trip against a device
//!   queue), the per-packet cost the PMD actually pays.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vf_bench::render_pmd;
use vf_pcie::HostMemory;
use vf_virtio::device_queue::DeviceQueue;
use vf_virtio::driver_queue::{BufferSpec, DriverQueue};
use vf_virtio::ring::VirtqueueLayout;
use virtio_fpga::experiments::{pmd_tails, ExperimentParams};
use virtio_fpga::{DriverKind, Testbed, TestbedConfig, PAPER_PAYLOADS};

const PACKETS_PER_ITER: usize = 200;

fn bench_pmd_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmd_roundtrip");
    for driver in [DriverKind::Virtio, DriverKind::VirtioPmd] {
        for &payload in &[64usize, 256, 1024] {
            group.throughput(Throughput::Elements(PACKETS_PER_ITER as u64));
            group.bench_with_input(
                BenchmarkId::new(driver.name(), payload),
                &payload,
                |b, &payload| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        let cfg = TestbedConfig::paper(driver, payload, PACKETS_PER_ITER, seed);
                        let r = Testbed::new(cfg).run();
                        assert_eq!(r.verify_failures, 0);
                        r
                    });
                },
            );
        }
    }
    group.finish();

    // Print the E15 table once, at a useful scale.
    println!("\nE15 rows (5 000 packets per cell):");
    let rows = pmd_tails(ExperimentParams {
        packets: 5_000,
        seed: 42,
        threads: vf_sim::default_threads(),
        shards: 1,
    });
    println!("{}", render_pmd(&rows));
    let _ = PAPER_PAYLOADS; // payload list documented above
}

fn bench_ring_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmd_ring_batch");
    for &batch in &[1usize, 8, 32] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let mut mem = HostMemory::testbed_default();
            let ring = mem.alloc(
                VirtqueueLayout::contiguous(0, 256).total_bytes() as usize,
                4096,
            );
            let layout = VirtqueueLayout::contiguous(ring, 256);
            let mut drv = DriverQueue::new(&mut mem, layout, true);
            let mut dev = DeviceQueue::new(layout, true, false);
            let bufs: Vec<u64> = (0..batch).map(|_| mem.alloc(2048, 64)).collect();
            b.iter(|| {
                let heads: Vec<u16> = bufs
                    .iter()
                    .map(|&buf| {
                        drv.add_chain(&mut mem, &[BufferSpec::readable(buf, 2048)])
                            .unwrap()
                    })
                    .collect();
                drv.publish_batch(&mut mem, &heads).unwrap();
                while let Some(chain) = dev.pop_chain(&mem).unwrap() {
                    dev.complete(&mut mem, chain.head, 64);
                }
                let used = drv.pop_used_batch(&mut mem, usize::MAX);
                assert_eq!(used.len(), batch);
                black_box(used)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pmd_roundtrip, bench_ring_batch);
criterion_main!(benches);
