//! Criterion bench for **Table I** — tail latencies (95/99/99.9%) for
//! data movement with both drivers.
//!
//! Benchmarks: (a) the per-cell simulation cost, and (b) the
//! exact-percentile extraction over paper-sized sample sets (50 000
//! samples), which is the analysis step behind the table. The printed
//! block is the table itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vf_bench::render_tails;
use vf_sim::SampleSet;
use virtio_fpga::experiments::{run_matrix, table1, ExperimentParams};
use virtio_fpga::{DriverKind, Testbed, TestbedConfig};

fn bench_table1(c: &mut Criterion) {
    // (a) simulation cost of the cells at two extreme payloads.
    let mut group = c.benchmark_group("table1_cells");
    for driver in [DriverKind::Virtio, DriverKind::Xdma] {
        for payload in [64usize, 1024] {
            group.bench_with_input(
                BenchmarkId::new(driver.name(), payload),
                &payload,
                |b, &p| {
                    let mut seed = 300u64;
                    b.iter(|| {
                        seed += 1;
                        Testbed::new(TestbedConfig::paper(driver, p, 200, seed)).run()
                    });
                },
            );
        }
    }
    group.finish();

    // (b) exact-percentile extraction at the paper's sample count.
    let mut group = c.benchmark_group("table1_percentiles");
    group.bench_function("exact_p95_p99_p999_50k", |b| {
        let base: Vec<f64> = (0..50_000)
            .map(|i| 30.0 + (i % 997) as f64 * 0.05)
            .collect();
        b.iter(|| {
            let mut s = SampleSet::from_us(base.clone());
            (s.percentile(95.0), s.percentile(99.0), s.percentile(99.9))
        });
    });
    group.finish();

    let mut m = run_matrix(ExperimentParams {
        packets: 10_000,
        seed: 42,
        threads: vf_sim::default_threads(),
        shards: 1,
    });
    println!(
        "\nTable I — Tail latencies for data movement with VirtIO and XDMA\n{}",
        render_tails(&table1(&mut m))
    );
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
