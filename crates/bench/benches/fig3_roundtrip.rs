//! Criterion bench for **Fig. 3** — round-trip latency distributions.
//!
//! Each benchmark runs a fixed-size batch of simulated round trips for
//! one `(driver, payload)` cell and, at the end, prints the same summary
//! row the paper's figure reports (mean/σ plus the quartiles of the
//! distribution). Criterion's measurement is the simulation throughput;
//! the scientific output is the printed row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use virtio_fpga::{DriverKind, Testbed, TestbedConfig, PAPER_PAYLOADS};

const PACKETS_PER_ITER: usize = 200;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_roundtrip");
    for driver in [DriverKind::Virtio, DriverKind::Xdma] {
        for &payload in &PAPER_PAYLOADS {
            group.throughput(Throughput::Elements(PACKETS_PER_ITER as u64));
            group.bench_with_input(
                BenchmarkId::new(driver.name(), payload),
                &payload,
                |b, &payload| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        let cfg = TestbedConfig::paper(driver, payload, PACKETS_PER_ITER, seed);
                        let r = Testbed::new(cfg).run();
                        assert_eq!(r.verify_failures, 0);
                        r
                    });
                },
            );
        }
    }
    group.finish();

    // Print the figure's rows once, at paper-like scale.
    println!("\nFig. 3 rows (10 000 packets per cell):");
    for &payload in &PAPER_PAYLOADS {
        for driver in [DriverKind::Virtio, DriverKind::Xdma] {
            let cfg = TestbedConfig::paper(driver, payload, 10_000, 42);
            let mut r = Testbed::new(cfg).run();
            println!("  {}", r.fig3_line());
        }
    }
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
