//! Microbenchmarks of the testbed's substrates: the protocol and model
//! layers the paper-level numbers are built from. These catch
//! performance regressions in the hot paths of the simulation itself
//! (virtqueue operations, link timing arithmetic, packet framing, the
//! DMA engine walk, the discrete-event core).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vf_hostsw::{build_udp_frame, parse_udp_frame, Ipv4Addr, MacAddr, UdpFlow};
use vf_pcie::{HostMemory, LinkConfig, PcieLink};
use vf_sim::{Scheduler, Simulation, Time, World};
use vf_virtio::device_queue::DeviceQueue;
use vf_virtio::driver_queue::{BufferSpec, DriverQueue};
use vf_virtio::ring::VirtqueueLayout;
use vf_virtio::VecMemory;
use vf_xdma::{single_descriptor, ChannelDir, VecCardMemory, XdmaEngine};

fn bench_virtqueue(c: &mut Criterion) {
    let mut group = c.benchmark_group("virtqueue");
    group.throughput(Throughput::Elements(1));
    group.bench_function("add_publish_pop_complete", |b| {
        let mut mem = VecMemory::new(1 << 20);
        let layout = VirtqueueLayout::contiguous(0x1000, 256);
        let mut drv = DriverQueue::new(&mut mem, layout, true);
        let mut dev = DeviceQueue::new(layout, true, false);
        b.iter(|| {
            let head = drv
                .add_and_publish(&mut mem, &[BufferSpec::readable(0x10_000, 64)])
                .unwrap();
            let chain = dev.pop_chain(&mem).unwrap().unwrap();
            let old = dev.complete(&mut mem, chain.head, 0);
            let _ = dev.should_interrupt(&mem, old);
            let used = drv.pop_used(&mut mem).unwrap();
            assert_eq!(used.id, head as u32);
        });
    });
    group.finish();
}

fn bench_link(c: &mut Criterion) {
    let mut group = c.benchmark_group("pcie_link");
    group.bench_function("dma_read_1k", |b| {
        let mut link = PcieLink::new(LinkConfig::gen2_x2());
        let mut now = Time::ZERO;
        b.iter(|| {
            now = link.dma_read(now, 0x1000, 1024);
            now
        });
    });
    group.bench_function("dma_write_1k", |b| {
        let mut link = PcieLink::new(LinkConfig::gen2_x2());
        let mut now = Time::ZERO;
        b.iter(|| {
            now = link.dma_write(now, 0x1000, 1024);
            now
        });
    });
    group.finish();
}

fn bench_packet(c: &mut Criterion) {
    let flow = UdpFlow {
        src_mac: MacAddr([2, 0, 0, 0, 0, 1]),
        dst_mac: MacAddr([2, 0, 0, 0, 0, 2]),
        src_ip: Ipv4Addr::new(10, 0, 0, 1),
        dst_ip: Ipv4Addr::new(10, 0, 0, 2),
        src_port: 40000,
        dst_port: 7,
    };
    let payload = vec![0xA5u8; 1024];
    let mut group = c.benchmark_group("packet");
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("build_udp_1k", |b| {
        b.iter(|| build_udp_frame(&flow, 7, &payload, true));
    });
    let frame = build_udp_frame(&flow, 7, &payload, true);
    group.bench_function("parse_udp_1k", |b| {
        b.iter(|| parse_udp_frame(&frame).unwrap());
    });
    group.finish();
}

fn bench_xdma_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("xdma_engine");
    group.bench_function("h2c_run_1k", |b| {
        let mut link = PcieLink::new(LinkConfig::gen2_x2());
        let mut host = HostMemory::new(0, 1 << 20);
        let mut card = VecCardMemory::new(1 << 16);
        HostMemory::write(&mut host, 0x1_0000, &vec![7u8; 1024]);
        single_descriptor(0x1_0000, 0, 1024).write_to(&mut host, 0x2000);
        let mut eng = XdmaEngine::new(ChannelDir::H2C);
        let mut now = Time::ZERO;
        b.iter(|| {
            let out = eng
                .run(now, 0x2000, &mut link, &mut host, &mut card)
                .unwrap();
            now = out.completed_at;
            out.bytes
        });
    });
    group.finish();
}

fn bench_des(c: &mut Criterion) {
    /// Ping-pong world: two logical parties exchanging a counter.
    struct PingPong {
        left: u64,
    }
    impl World for PingPong {
        type Msg = u32;
        fn deliver(&mut self, _now: Time, msg: u32, sched: &mut Scheduler<u32>) {
            if self.left > 0 {
                self.left -= 1;
                sched.after(Time::from_ns(100), msg.wrapping_add(1));
            }
        }
    }
    let mut group = c.benchmark_group("des_engine");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("events_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(PingPong { left: 10_000 });
            sim.schedule(Time::ZERO, 0);
            sim.run_to_idle();
            sim.events_delivered()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_virtqueue,
    bench_link,
    bench_packet,
    bench_xdma_engine,
    bench_des
);
criterion_main!(benches);
