//! Criterion bench for the **metrics hot path** — the cost every
//! instrumented call site pays when no session is installed, which is
//! the cost every ordinary (unmetered) run pays for carrying the
//! observability hooks at all.
//!
//! Three views:
//!
//! * `disabled/*` — `counter_add`/`gauge_set`/`hist_record` and the
//!   engine's per-event `sample_pending` with no session installed.
//!   Each must cost essentially one thread-local load and branch; the
//!   floor check below asserts it against exactly that baseline.
//! * `enabled/*` — the same updates against a live session, for scale
//!   (a registry hash lookup plus an i64 update).
//! * `world/*` — an E19 MQ world run unmetered vs metered, the
//!   end-to-end overhead a `repro -- metrics` user actually pays.
//!
//! The assertion: the disabled update path may cost at most
//! `DISABLED_OVERHEAD_CEILING` times the bare `is_enabled()`
//! thread-local load (floor measured the same way, same best-of-K wall
//! clock). A regression that adds work ahead of the enabled check —
//! formatting, hashing, a second TLS access — blows well past that
//! ratio and fails loudly. The ceiling is set generously above the
//! measured ~1.0–1.5× so CI never flakes.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use virtio_fpga::{metered, run_mq, DriverKind, TestbedConfig};

const OPS: u64 = 1_000_000;

/// Best-of-5 wall-clock seconds for `OPS` iterations of `f`.
fn best_of<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..OPS {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn bench_disabled(c: &mut Criterion) {
    assert!(!vf_metrics::is_enabled());
    let mut group = c.benchmark_group("metrics_disabled");
    group.throughput(Throughput::Elements(OPS));
    group.bench_function("counter_add", |b| {
        b.iter(|| {
            for i in 0..OPS {
                vf_metrics::counter_add("bench.disabled.ctr", 0, black_box(i));
            }
        })
    });
    group.bench_function("gauge_set", |b| {
        b.iter(|| {
            for i in 0..OPS {
                vf_metrics::gauge_set("bench.disabled.g", 0, black_box(i as i64));
            }
        })
    });
    group.bench_function("hist_record", |b| {
        b.iter(|| {
            for i in 0..OPS {
                vf_metrics::hist_record("bench.disabled.h", 0, black_box(i));
            }
        })
    });
    group.bench_function("sample_pending", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..OPS {
                hits += vf_metrics::sample_pending(black_box(i)) as u64;
            }
            hits
        })
    });
    group.finish();
}

fn bench_enabled(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_enabled");
    group.throughput(Throughput::Elements(OPS));
    group.bench_function("counter_add", |b| {
        b.iter(|| {
            let ((), report) = metered(vf_metrics::MetricsConfig::default(), || {
                for i in 0..OPS {
                    vf_metrics::counter_add("bench.enabled.ctr", 0, black_box(i & 1));
                }
            });
            report.counter_total("bench.enabled.ctr")
        })
    });
    group.bench_function("hist_record", |b| {
        b.iter(|| {
            let ((), report) = metered(vf_metrics::MetricsConfig::default(), || {
                for i in 0..OPS {
                    vf_metrics::hist_record("bench.enabled.h", 0, black_box(i));
                }
            });
            report.instruments.len()
        })
    });
    group.finish();
}

const PACKETS: usize = 200;

fn bench_world_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_world");
    group.throughput(Throughput::Elements(PACKETS as u64));
    group.bench_function("e19_mq4_unmetered", |b| {
        let mut seed = 1_700u64;
        b.iter(|| {
            seed += 1;
            let mut cfg = TestbedConfig::paper(DriverKind::VirtioMq, 256, PACKETS, seed);
            cfg.options.mq_queue_pairs = 4;
            let r = run_mq(&cfg, 16);
            assert_eq!(r.verify_failures, 0);
            r.pps
        });
    });
    group.bench_function("e19_mq4_metered", |b| {
        let mut seed = 1_700u64;
        b.iter(|| {
            seed += 1;
            let mut cfg = TestbedConfig::paper(DriverKind::VirtioMq, 256, PACKETS, seed);
            cfg.options.mq_queue_pairs = 4;
            let (r, report) = metered(vf_metrics::MetricsConfig::default(), || run_mq(&cfg, 16));
            assert_eq!(r.verify_failures, 0);
            assert!(report.violations.is_empty());
            r.pps
        });
    });
    group.finish();
}

/// Ceiling on `disabled update time / bare thread-local load time`.
/// A correct implementation is the same load plus an early return, so
/// the true ratio sits near 1; anything above the ceiling means work
/// crept in ahead of the enabled check.
const DISABLED_OVERHEAD_CEILING: f64 = 4.0;

fn bench_disabled_floor(_c: &mut Criterion) {
    assert!(!vf_metrics::is_enabled());
    let baseline = best_of(|| {
        black_box(vf_metrics::is_enabled());
    });
    let cases: [(&str, f64); 4] = [
        (
            "counter_add",
            best_of(|| vf_metrics::counter_add("bench.floor.ctr", 0, black_box(1))),
        ),
        (
            "gauge_set",
            best_of(|| vf_metrics::gauge_set("bench.floor.g", 0, black_box(1))),
        ),
        (
            "hist_record",
            best_of(|| vf_metrics::hist_record("bench.floor.h", 0, black_box(1))),
        ),
        (
            "sample_pending",
            best_of(|| {
                black_box(vf_metrics::sample_pending(black_box(1)));
            }),
        ),
    ];
    let per_op = |s: f64| s * 1e9 / OPS as f64;
    for (label, secs) in cases {
        let ratio = secs / baseline;
        println!(
            "metrics_overhead/{label:<16} disabled {:>6.2} ns/op vs bare TLS load {:>6.2} ns/op -> {ratio:.2}x",
            per_op(secs),
            per_op(baseline),
        );
        assert!(
            ratio <= DISABLED_OVERHEAD_CEILING,
            "disabled {label} costs {ratio:.2}x a bare thread-local load \
             (ceiling {DISABLED_OVERHEAD_CEILING}x): work crept ahead of the enabled check"
        );
    }
}

criterion_group!(
    benches,
    bench_disabled,
    bench_enabled,
    bench_world_overhead,
    bench_disabled_floor
);
criterion_main!(benches);
