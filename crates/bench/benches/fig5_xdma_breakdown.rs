//! Criterion bench for **Fig. 5** — the XDMA (vendor) driver's latency
//! breakdown. Mirrors the Fig. 4 bench for the other contender; the
//! printed block shows software dominating hardware, the inverse of the
//! VirtIO allocation (§V).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vf_bench::render_fig45;
use virtio_fpga::experiments::{fig5, run_matrix, ExperimentParams};
use virtio_fpga::{DriverKind, Testbed, TestbedConfig, PAPER_PAYLOADS};

const PACKETS_PER_ITER: usize = 200;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_xdma_breakdown");
    for &payload in &PAPER_PAYLOADS {
        group.throughput(Throughput::Elements(PACKETS_PER_ITER as u64));
        group.bench_with_input(BenchmarkId::from_parameter(payload), &payload, |b, &p| {
            let mut seed = 200u64;
            b.iter(|| {
                seed += 1;
                let cfg = TestbedConfig::paper(DriverKind::Xdma, p, PACKETS_PER_ITER, seed);
                let mut r = Testbed::new(cfg).run();
                (r.sw_summary(), r.hw_summary())
            });
        });
    }
    group.finish();

    let mut m = run_matrix(ExperimentParams {
        packets: 10_000,
        seed: 42,
        threads: vf_sim::default_threads(),
        shards: 1,
    });
    println!(
        "\nFig. 5 — {}",
        render_fig45(DriverKind::Xdma, &fig5(&mut m))
    );
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
