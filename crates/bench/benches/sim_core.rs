//! Criterion bench for the **discrete-event engine hot path** — the
//! timing-wheel scheduler that every world inherits, measured against the
//! preserved binary-heap baseline (`vf_sim::baseline::HeapSimulation`).
//!
//! Three views:
//!
//! * `churn/*` — a pure scheduler workload: N self-rescheduling event
//!   chains with E19/E21-shaped delays (ns–µs legs, same-instant bursts,
//!   past-clamped absolute times, occasional ms timers), run under both
//!   engines. N=32 matches an E19 4-pair run's outstanding-event
//!   population, N=512 an E21 64-tenant run, N=8192 a 256-queue sweep.
//! * `e19_mq4` / `e21_tenants8` — the real E19 and E21 inner loops
//!   (4 queue pairs / 8 vhost tenants) on the production engine, so model
//!   *and* scheduler regressions show up in one number.
//! * `speedup/*` — a matched wheel-vs-heap pair per scale, printed as a
//!   ratio and **asserted** so a scheduler regression fails the bench
//!   loudly rather than drifting quietly. The flagship `mrtt` scale is
//!   the million-RTT sweep shape: 8192 hot chains churning under 2^20
//!   parked RTT-timeout guards. The heap sifts every operation through
//!   the parked population (O(log n) over ~1M entries); the wheel files
//!   the guards once at a high level and never touches them again, which
//!   is where the ≥5× wall-clock win comes from (measured ratios are in
//!   EXPERIMENTS.md; the assert floor is set lower so CI never flakes).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vf_sim::baseline::HeapSimulation;
use vf_sim::{Outbox, Scheduler, ShardWorld, ShardedSimulation, Simulation, Time, World};
use virtio_fpga::{run_mq, run_tenants, DriverKind, TestbedConfig};

/// Self-rescheduling churn world. Even messages are persistent chains
/// that reschedule themselves with a xorshift-derived delay; odd messages
/// are one-shot companions (same-instant bursts, past-clamped absolutes,
/// long timers) so the pending population stays near the chain count.
struct Churn;

impl World for Churn {
    type Msg = u64;

    fn deliver(&mut self, now: Time, state: u64, sched: &mut Scheduler<u64>) {
        if state & 1 == 1 {
            return; // one-shot companion
        }
        let mut x = state | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let x = x & !1;
        // 1 ns .. ~3 µs: the spread of doorbell/DMA/IRQ legs in the
        // E19/E21 worlds.
        let delay = Time::from_ps(1_000 + (x >> 8) % 3_000_000);
        sched.after(delay, x);
        match x % 97 {
            0 => sched.now_msg(x | 1),
            1 => sched.at(now.saturating_sub(Time::from_ns(5)), x | 1),
            2 => sched.after(Time::from_ms(1), x | 1),
            _ => {}
        }
    }
}

fn seed_state(i: u64) -> u64 {
    (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 0x100) & !1
}

/// Seed `chains` hot event chains plus `parked` far-future one-shot
/// timers (RTT-timeout guards at +100 ms..+1 s that never fire inside the
/// measured window — the shape a million-RTT sweep leaves pending).
fn seed<S: FnMut(Time, u64)>(mut schedule: S, chains: u64, parked: u64) {
    for i in 0..chains {
        schedule(Time::from_ns(i), seed_state(i));
    }
    for j in 0..parked {
        schedule(Time::from_ms(100 + j % 900), 1);
    }
}

fn wheel_sim(chains: u64, parked: u64) -> Simulation<Churn> {
    let mut sim = Simulation::new(Churn);
    seed(|d, m| sim.schedule(d, m), chains, parked);
    sim
}

fn heap_sim(chains: u64, parked: u64) -> HeapSimulation<Churn> {
    let mut sim = HeapSimulation::new(Churn);
    seed(|d, m| sim.schedule(d, m), chains, parked);
    sim
}

const CHURN_EVENTS: u64 = 100_000;

/// (label, hot chains, parked timers, asserted speedup floor).
const SCALES: [(&str, u64, u64, f64); 3] = [
    ("e19_pend32", 32, 0, 1.2),
    ("e21_pend512", 512, 0, 1.2),
    ("mrtt_pend8192_parked1m", 8192, 1 << 20, 3.0),
];

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_core_churn");
    group.throughput(Throughput::Elements(CHURN_EVENTS));
    for (label, chains, parked, _) in SCALES {
        if parked > 0 {
            // Seeding 2^20 parked timers per iteration would swamp the
            // per-event signal; the mrtt scale is covered by the matched
            // speedup measurement below instead.
            continue;
        }
        group.bench_function(format!("{label}_wheel"), |b| {
            b.iter(|| {
                let mut sim = wheel_sim(chains, parked);
                sim.run(Time::MAX, CHURN_EVENTS);
                sim.events_delivered()
            })
        });
        group.bench_function(format!("{label}_heap"), |b| {
            b.iter(|| {
                let mut sim = heap_sim(chains, parked);
                sim.run(Time::MAX, CHURN_EVENTS);
                sim.events_delivered()
            })
        });
    }
    group.finish();
}

const PACKETS: usize = 200;

fn bench_world_inner_loops(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_core_worlds");
    group.throughput(Throughput::Elements(PACKETS as u64));
    group.bench_function("e19_mq4", |b| {
        let mut seed = 700u64;
        b.iter(|| {
            seed += 1;
            let mut cfg = TestbedConfig::paper(DriverKind::VirtioMq, 256, PACKETS, seed);
            cfg.options.mq_queue_pairs = 4;
            let r = run_mq(&cfg, 16);
            assert_eq!(r.verify_failures, 0);
            r.pps
        });
    });
    group.bench_function("e21_tenants8", |b| {
        let mut seed = 900u64;
        b.iter(|| {
            seed += 1;
            let mut cfg = TestbedConfig::paper(DriverKind::VirtioTenant, 256, PACKETS, seed);
            cfg.options.mq_queue_pairs = 8;
            cfg.options.tenant_vhost = true;
            let r = run_tenants(&cfg, 16);
            assert_eq!(r.verify_failures, 0);
            r.pps
        });
    });
    group.finish();
}

/// One matched measurement per scale: seed both engines identically
/// (outside the timed region), take the best-of-3 wall clock for the same
/// delivered-event count, and print the ratio. A broken wheel shows up as
/// a ratio collapse; the floors are set well below the measured ratios
/// (see EXPERIMENTS.md) so the check is loud but CI-safe.
fn bench_speedup_floor(_c: &mut Criterion) {
    for (label, chains, parked, floor) in SCALES {
        let mut wheel = f64::MAX;
        for _ in 0..3 {
            let mut sim = wheel_sim(chains, parked);
            let t = Instant::now();
            sim.run(Time::MAX, CHURN_EVENTS);
            wheel = wheel.min(t.elapsed().as_secs_f64());
            assert_eq!(sim.events_delivered(), CHURN_EVENTS);
        }
        let mut heap = f64::MAX;
        for _ in 0..3 {
            let mut sim = heap_sim(chains, parked);
            let t = Instant::now();
            sim.run(Time::MAX, CHURN_EVENTS);
            heap = heap.min(t.elapsed().as_secs_f64());
            assert_eq!(sim.events_delivered(), CHURN_EVENTS);
        }
        let ratio = heap / wheel;
        let per_ev = |s: f64| s * 1e9 / CHURN_EVENTS as f64;
        println!(
            "sim_core_speedup/{label:<40} wheel {:>6.1} ns/ev, heap {:>6.1} ns/ev -> {ratio:.1}x",
            per_ev(wheel),
            per_ev(heap),
        );
        assert!(
            ratio >= floor,
            "scheduler regression: wheel only {ratio:.2}x faster than heap at {label} \
             (floor {floor}x)"
        );
    }
}

// ---------------------------------------------------------------------
// E25: sharded-engine wall-clock (vf_sim::shard)
// ---------------------------------------------------------------------

/// Decomposable logical-process workload at E19/E21 scale: `n` LPs,
/// each running a self-rescheduling chain of `steps` events ~2 µs
/// apart, with every 8th step also posting a one-shot message to the
/// next LP around the ring at least one 100 µs link-lookahead away.
/// Each delivery burns `work` xorshift rounds — the stand-in for the
/// µs-scale model work (stack, driver, link) a real E19/E21 event does.
///
/// LPs are grouped contiguously into shards, so ring traffic crosses a
/// shard boundary only at group edges — the per-queue-pair decomposition
/// the tentpole targets, with the same chunky windows (lookahead ≫
/// event spacing) a physical link grants.
struct LpGroup {
    first: usize,
    count: usize,
    n: usize,
    steps: u32,
    work: u32,
    /// Order-independent checksum over `(lp, step, now)`: the delivered
    /// *set* is schedule-determined, so 1-shard and N-shard runs must
    /// agree even where same-instant tie orders differ.
    sum: u64,
    delivered: u64,
}

/// `(lp, step, is_cross)` — chain steps reschedule, cross posts absorb.
type LpMsg = (u32, u32, bool);

const LP_LOOKAHEAD: Time = Time::from_us(100);

fn lp_mix(a: u64, b: u64) -> u64 {
    let mut x = a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b;
    x ^= x >> 33;
    x.wrapping_mul(0xFF51_AFD7_ED55_8CCD)
}

/// Deterministic 1–3 µs chain spacing from `(lp, step)`.
fn lp_delay(lp: u32, step: u32) -> Time {
    Time::from_ps(1_000_000 + lp_mix(lp as u64, step as u64) % 2_000_000)
}

impl LpGroup {
    fn burn(&mut self, lp: u32, step: u32, now: Time) {
        let mut x = lp_mix(lp as u64, step as u64) | 1;
        for _ in 0..self.work {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        self.sum = self
            .sum
            .wrapping_add(lp_mix(x, now.as_ps()) ^ (lp as u64) << 32 ^ step as u64);
        self.delivered += 1;
    }
}

impl ShardWorld for LpGroup {
    type Msg = LpMsg;

    fn deliver(
        &mut self,
        now: Time,
        (lp, step, cross): LpMsg,
        sched: &mut Scheduler<LpMsg>,
        net: &mut Outbox<'_, LpMsg>,
    ) {
        self.burn(lp, step, now);
        if cross {
            return;
        }
        if step + 1 < self.steps {
            sched.at(now + lp_delay(lp, step), (lp, step + 1, false));
        }
        if step % 8 == 0 {
            let dst = (lp as usize + 1) % self.n;
            let at = now + LP_LOOKAHEAD + Time::from_ps(lp_mix(step as u64, lp as u64) % 500_000);
            let msg = (dst as u32, step, true);
            if dst >= self.first && dst < self.first + self.count {
                sched.at(at, msg);
            } else {
                net.send(dst / self.count, at, msg);
            }
        }
    }
}

/// Build `n` LPs grouped into `shards` contiguous shard worlds, chains
/// staggered by LP index, and run to idle with `threads` workers.
/// Returns (wall seconds, checksum, events delivered).
fn run_lp_shards(
    n: usize,
    shards: usize,
    threads: usize,
    steps: u32,
    work: u32,
) -> (f64, u64, u64) {
    assert_eq!(n % shards, 0, "contiguous grouping needs equal shards");
    let per = n / shards;
    let worlds = (0..shards)
        .map(|s| LpGroup {
            first: s * per,
            count: per,
            n,
            steps,
            work,
            sum: 0,
            delivered: 0,
        })
        .collect();
    let mut sim = ShardedSimulation::new(worlds, LP_LOOKAHEAD).with_threads(threads);
    for lp in 0..n {
        sim.schedule_at(
            lp / per,
            Time::from_us(1) + Time::from_ns(lp as u64),
            (lp as u32, 0, false),
        );
    }
    let t = Instant::now();
    let outcome = sim.run_to_idle();
    let wall = t.elapsed().as_secs_f64();
    assert_eq!(outcome, vf_sim::RunOutcome::Idle);
    let (sum, delivered) = (0..shards).fold((0u64, 0u64), |(s, d), i| {
        let w = sim.world(i);
        (s.wrapping_add(w.sum), d + w.delivered)
    });
    (wall, sum, delivered)
}

/// Chain length and per-event work for the shard scales: ~300 events
/// per LP at ~1.5k xorshift rounds each ≈ the event density and model
/// cost of the real inner loops.
const LP_STEPS: u32 = 300;
const LP_WORK: u32 = 1_500;

/// (label, LPs, shards, asserted speedup floor at >= 4 cores).
const LP_SCALES: [(&str, usize, usize, f64); 2] = [
    ("e19_16lp_4shards", 16, 4, 1.3),
    ("e21_64lp_4shards", 64, 4, 2.0),
];

/// E25 measurement: best-of-3 wall clock, 1 shard (the monolithic fast
/// path) vs 4 shards on 4 worker threads, at E19 16-LP and E21 64-LP
/// scale. Checksums pin the sharded runs to the single-shard event set,
/// and thread count is asserted invisible to the results. The ≥2×
/// speedup floor at the 64-LP scale is enforced whenever the machine
/// has ≥ 4 cores (CI runners do); on smaller machines the ratio is
/// printed and only a sanity floor applies — measured numbers live in
/// EXPERIMENTS.md §E25.
fn bench_shard_speedup(_c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for (label, n, shards, floor) in LP_SCALES {
        let mut mono = f64::MAX;
        let mut mono_sum = 0;
        let mut mono_delivered = 0;
        for _ in 0..3 {
            let (wall, sum, delivered) = run_lp_shards(n, 1, 1, LP_STEPS, LP_WORK);
            mono = mono.min(wall);
            mono_sum = sum;
            mono_delivered = delivered;
        }
        // Determinism spot check on the real engine: worker threads
        // must not change the delivered set.
        let (_, serial_sum, serial_delivered) = run_lp_shards(n, shards, 1, LP_STEPS, LP_WORK);
        assert_eq!(
            serial_sum, mono_sum,
            "{label}: sharding changed the event set"
        );
        assert_eq!(serial_delivered, mono_delivered);
        let mut sharded = f64::MAX;
        for _ in 0..3 {
            let (wall, sum, delivered) = run_lp_shards(n, shards, shards, LP_STEPS, LP_WORK);
            sharded = sharded.min(wall);
            assert_eq!(sum, mono_sum, "{label}: threads changed the event set");
            assert_eq!(delivered, mono_delivered);
        }
        let ratio = mono / sharded;
        println!(
            "sim_core_shards/{label:<24} 1-shard {:>7.1} ms, {shards}-shard {:>7.1} ms -> {ratio:.2}x \
             ({mono_delivered} events, {cores} cores)",
            mono * 1e3,
            sharded * 1e3,
        );
        if cores >= 4 {
            assert!(
                ratio >= floor,
                "sharded engine too slow: {ratio:.2}x < {floor}x floor at {label} \
                 on {cores} cores"
            );
        } else {
            println!("sim_core_shards/{label:<24} skipping {floor}x floor: only {cores} core(s)");
            assert!(
                ratio >= 0.2,
                "sharded engine pathologically slow even for {cores} core(s): {ratio:.2}x"
            );
        }
    }
}

criterion_group!(
    benches,
    bench_churn,
    bench_world_inner_loops,
    bench_speedup_floor,
    bench_shard_speedup
);
criterion_main!(benches);
