//! Criterion bench for the **E20 walker pipeline** — simulation
//! throughput of the MQ worlds with the descriptor walkers running
//! serially (depth 1) versus pipelined over multiple outstanding
//! non-posted reads (depth 4), for both ring layouts.
//!
//! The measured quantity is host wall-clock per simulated run, so this
//! catches regressions in the walker state machines and the multi-tag
//! link bookkeeping themselves, independent of the simulated timings
//! they produce.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use virtio_fpga::{run_mq, DriverKind, TestbedConfig};

const PACKETS: usize = 200;
const PAIRS: u16 = 4;
const WINDOW: usize = 16;

fn bench_walker_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("walker_pipeline");
    group.throughput(Throughput::Elements(PACKETS as u64));
    let layouts = [
        ("split", DriverKind::VirtioMq),
        ("packed", DriverKind::VirtioMqPacked),
    ];
    for (layout, kind) in layouts {
        for depth in [1usize, 4] {
            group.bench_function(format!("{layout}_depth{depth}"), |b| {
                let mut seed = 500u64;
                b.iter(|| {
                    seed += 1;
                    let mut cfg = TestbedConfig::paper(kind, 256, PACKETS, seed);
                    cfg.options.mq_queue_pairs = PAIRS;
                    cfg.options.pipeline_depth = depth;
                    let r = run_mq(&cfg, WINDOW);
                    assert_eq!(r.verify_failures, 0);
                    r.pps
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_walker_pipeline);
criterion_main!(benches);
