//! Criterion bench for **Fig. 4** — the VirtIO driver's latency
//! breakdown (software vs hardware, mean ± σ per payload).
//!
//! The benchmark measures simulation throughput of the VirtIO world per
//! payload; the printed block is the figure's content: per payload, the
//! software and hardware components with their standard deviations, and
//! the hw-dominance flag the paper's §V discusses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vf_bench::render_fig45;
use virtio_fpga::experiments::{fig4, run_matrix, ExperimentParams};
use virtio_fpga::{DriverKind, Testbed, TestbedConfig, PAPER_PAYLOADS};

const PACKETS_PER_ITER: usize = 200;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_virtio_breakdown");
    for &payload in &PAPER_PAYLOADS {
        group.throughput(Throughput::Elements(PACKETS_PER_ITER as u64));
        group.bench_with_input(BenchmarkId::from_parameter(payload), &payload, |b, &p| {
            let mut seed = 100u64;
            b.iter(|| {
                seed += 1;
                let cfg = TestbedConfig::paper(DriverKind::Virtio, p, PACKETS_PER_ITER, seed);
                let mut r = Testbed::new(cfg).run();
                // The breakdown computation itself is part of the
                // artifact.
                (r.sw_summary(), r.hw_summary())
            });
        });
    }
    group.finish();

    let mut m = run_matrix(ExperimentParams {
        packets: 10_000,
        seed: 42,
        threads: vf_sim::default_threads(),
        shards: 1,
    });
    println!(
        "\nFig. 4 — {}",
        render_fig45(DriverKind::Virtio, &fig4(&mut m))
    );
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
