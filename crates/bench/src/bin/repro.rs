//! `repro` — regenerate every figure and table of the paper.
//!
//! ```sh
//! repro [--packets N] [--seed S] [--shards N] [--quick] [--trace FILE] <artifact>...
//!
//! artifacts:
//!   fig3 fig4 fig5 table1          the paper's evaluation (§V)
//!   portability                    E5  link sweep (§VI future work)
//!   xdma-irq-ablation              E6  §IV-C setup concession
//!   virtio-features                E7  EVENT_IDX / queue-size ablation
//!   bypass                         E8  §III-A bypass interface
//!   devtypes                       E9  console [14] vs net device
//!   csum-offload                   E10 checksum offload
//!   noise-sweep                    E11 host-noise sensitivity
//!   pipeline                       E12 pipelined throughput
//!   deployment                     E13 Fig. 1 deployment models
//!   card-memory                    E14 BRAM vs external DDR
//!   pmd                            E15 vf-pmd poll-mode driver vs kernel drivers
//!   pmd-crossover                  E16 poll-vs-interrupt crossover vs offered load
//!   packed                         E17 split vs packed virtqueue layout
//!   mq                             E19 multi-queue scaling
//!   ooo                            E20 out-of-order descriptor pipeline
//!   tenants                        E21 multi-tenant vhost multiplexing + noisy neighbor
//!   blk                            E24 virtio-blk storage sweep vs XDMA baseline
//!   all                            everything above
//!   trace                          E18 cross-layer span trace + Perfetto export
//!   metrics                        E23 sampled metrics + watchdogs (mq/ooo/tenants)
//! ```
//!
//! With `--quick`, runs use 2 000 packets instead of the paper's 50 000.
//!
//! `--shards N` caps the in-run sharded engine (E25) on the `mq`,
//! `ooo`, and `tenants` artifacts. Results are bit-identical at every
//! shard count — the determinism contract of `vf_sim::shard` — so the
//! flag only affects wall-clock, never output. `VF_THREADS` pins sweep
//! and shard parallelism.
//!
//! The `trace` artifact runs a short traced round-trip batch for every
//! driver model, prints the per-round-trip latency-attribution table,
//! asserts the spans reconcile with the recorder's summaries, and
//! writes a Chrome/Perfetto `trace_event` JSON (load it at
//! <https://ui.perfetto.dev>) to `--out FILE` (default `trace.json`).
//!
//! `--trace FILE` additionally captures a trace of any *other* artifact
//! run: it forces sweeps onto one thread (tracing is per-thread) and
//! dumps everything those runs emitted to FILE on exit.
//!
//! The `metrics` artifact runs one metered MQ, one out-of-order, and
//! one multi-tenant world with the 10 µs sampler on, prints each
//! world's per-layer utilization/backlog report, asserts all four
//! invariant watchdogs stayed quiet, and writes the full time-series
//! as JSON to `--out FILE` (default `metrics.json`); `--csv DIR` adds
//! one long-format CSV per world.

use std::io::Write as _;
use std::path::PathBuf;

use vf_bench::*;
use virtio_fpga::experiments::{self, ExperimentParams};
use virtio_fpga::{DriverKind, PAPER_PAYLOADS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut packets = virtio_fpga::PAPER_PACKETS;
    let mut seed = 42u64;
    let mut csv_dir: Option<PathBuf> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut shards = 1usize;
    let mut artifacts: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--packets" => {
                i += 1;
                packets = args[i].parse().expect("--packets N");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed S");
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(PathBuf::from(&args[i]));
            }
            "--out" => {
                i += 1;
                out_path = Some(PathBuf::from(&args[i]));
            }
            "--trace" => {
                i += 1;
                trace_path = Some(PathBuf::from(&args[i]));
            }
            "--shards" => {
                i += 1;
                shards = args[i].parse().expect("--shards N");
                assert!(shards >= 1, "--shards must be >= 1");
            }
            "--quick" => packets = 2_000,
            "--help" | "-h" => {
                print_usage();
                return;
            }
            a => artifacts.push(a.to_string()),
        }
        i += 1;
    }
    if artifacts.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    if artifacts.iter().any(|a| a == "all") {
        artifacts = [
            "fig3",
            "fig4",
            "fig5",
            "table1",
            "portability",
            "xdma-irq-ablation",
            "virtio-features",
            "bypass",
            "devtypes",
            "csum-offload",
            "noise-sweep",
            "pipeline",
            "deployment",
            "card-memory",
            "pmd",
            "pmd-crossover",
            "packed",
            "mq",
            "ooo",
            "tenants",
            "blk",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    if trace_path.is_some() && artifacts.iter().any(|a| a == "trace") {
        eprintln!("--trace FILE and the `trace` artifact are mutually exclusive");
        eprintln!("(the artifact manages its own per-driver trace sessions)");
        std::process::exit(2);
    }
    let params = ExperimentParams {
        packets,
        seed,
        // Tracing is per-thread: a global capture must keep every run on
        // the thread that owns the session.
        threads: if trace_path.is_some() {
            1
        } else {
            vf_sim::default_threads()
        },
        shards,
    };
    eprintln!(
        "# testbed: Alinx AX7A200 model, PCIe Gen2 x2, Fedora 37 host model; {packets} packets/config, seed {seed}"
    );
    if trace_path.is_some() {
        // Big enough for a --quick artifact; the ring drops oldest
        // events beyond this rather than growing without bound.
        vf_trace::install(Box::new(vf_trace::RingBufferSink::new(4_000_000)));
    }

    // The paper matrix is shared by fig3/fig4/fig5/table1 — run it once.
    let needs_matrix = artifacts
        .iter()
        .any(|a| matches!(a.as_str(), "fig3" | "fig4" | "fig5" | "table1"));
    let mut matrix = needs_matrix.then(|| experiments::run_matrix(params));

    if let (Some(dir), Some(m)) = (&csv_dir, matrix.as_mut()) {
        write_matrix_csv(dir, m).expect("writing CSV");
        eprintln!("# raw samples + summaries written to {}", dir.display());
    }

    for artifact in &artifacts {
        match artifact.as_str() {
            "fig3" => {
                let rows = experiments::fig3(matrix.as_mut().unwrap());
                println!("{}", render_fig3(&rows));
            }
            "fig4" => {
                let rows = experiments::fig4(matrix.as_mut().unwrap());
                print!("Fig. 4 — ");
                println!("{}", render_fig45(DriverKind::Virtio, &rows));
            }
            "fig5" => {
                let rows = experiments::fig5(matrix.as_mut().unwrap());
                print!("Fig. 5 — ");
                println!("{}", render_fig45(DriverKind::Xdma, &rows));
            }
            "table1" => {
                let rows = experiments::table1(matrix.as_mut().unwrap());
                println!(
                    "Table I — Tail latencies for data movement\n{}",
                    render_tails(&rows)
                );
            }
            "portability" => {
                println!("{}", render_portability(&experiments::portability(params)));
            }
            "xdma-irq-ablation" => {
                println!(
                    "{}",
                    render_xdma_irq(&experiments::xdma_irq_ablation(params))
                );
            }
            "virtio-features" => {
                println!(
                    "{}",
                    render_virtio_features(&experiments::virtio_features(params))
                );
            }
            "bypass" => {
                println!("{}", render_bypass(&experiments::bypass(params)));
            }
            "devtypes" => {
                println!(
                    "{}",
                    render_device_types(&experiments::device_types(params))
                );
            }
            "csum-offload" => {
                println!("{}", render_csum(&experiments::csum_offload(params)));
            }
            "noise-sweep" => {
                println!("{}", render_noise(&experiments::noise_sweep(params)));
            }
            "pipeline" => {
                println!(
                    "{}",
                    render_pipeline(&experiments::pipelined_throughput(params))
                );
            }
            "deployment" => {
                println!(
                    "{}",
                    render_deployment(&experiments::deployment_models(params))
                );
            }
            "card-memory" => {
                println!("{}", render_card_memory(&experiments::card_memory(params)));
            }
            "pmd" => {
                println!("{}", render_pmd(&experiments::pmd_tails(params)));
            }
            "pmd-crossover" => {
                println!(
                    "{}",
                    render_pmd_crossover(&experiments::pmd_crossover(params))
                );
            }
            "packed" => {
                println!("{}", render_packed(&experiments::packed_ring(params)));
            }
            "mq" => {
                for payload in [256usize, 1024] {
                    println!(
                        "{}",
                        render_mq(payload, &experiments::mq_scaling(params, payload))
                    );
                }
            }
            "ooo" => {
                for payload in [256usize, 1024] {
                    println!(
                        "{}",
                        render_ooo(payload, &experiments::pipeline_depth(params, payload))
                    );
                }
            }
            "tenants" => {
                for payload in [256usize, 1024] {
                    println!(
                        "{}",
                        render_tenants(payload, &experiments::tenant_scaling(params, payload))
                    );
                }
                println!(
                    "{}",
                    render_noisy(256, &experiments::noisy_neighbor(params, 256))
                );
            }
            "blk" => {
                println!("{}", render_blk(&experiments::blk_storage(params)));
            }
            "trace" => {
                let out = out_path
                    .clone()
                    .unwrap_or_else(|| PathBuf::from("trace.json"));
                run_trace_artifact(&out, packets.min(50), seed);
            }
            "metrics" => {
                let out = out_path
                    .clone()
                    .unwrap_or_else(|| PathBuf::from("metrics.json"));
                run_metrics_artifact(&out, csv_dir.as_deref(), packets.min(2_000), seed);
            }
            other => {
                eprintln!("unknown artifact: {other}");
                print_usage();
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = &trace_path {
        let events = vf_trace::finish();
        std::fs::write(path, vf_trace::chrome_trace_json(&events)).expect("writing --trace output");
        eprintln!(
            "# trace: {} events written to {}",
            events.len(),
            path.display()
        );
    }
}

/// Adapt a metrics report's sampled series into Perfetto counter
/// tracks (histograms have no series and are skipped).
fn counter_tracks(report: &vf_metrics::MetricsReport) -> Vec<vf_trace::CounterTrack> {
    report
        .instruments
        .iter()
        .filter(|i| !i.series.is_empty())
        .map(|i| vf_trace::CounterTrack {
            name: format!("{}[{}]", i.name, i.index),
            points: i.series.clone(),
        })
        .collect()
}

/// The E18 trace artifact: run a short traced batch per driver model,
/// print the per-round-trip latency attribution, assert the spans
/// reconcile with the recorder, and export one Perfetto track per
/// driver to `out`. Each run is also metered, so every track carries
/// the sampler's counter series alongside its spans.
fn run_trace_artifact(out: &PathBuf, packets: usize, seed: u64) {
    use virtio_fpga::{metered, reconcile, traced_run, TestbedConfig};

    let drivers = [
        DriverKind::Virtio,
        DriverKind::VirtioPacked,
        DriverKind::Xdma,
        DriverKind::VirtioPmd,
    ];
    type Track = (
        &'static str,
        Vec<vf_trace::TraceEvent>,
        Vec<vf_trace::CounterTrack>,
    );
    let mut tracks: Vec<Track> = Vec::new();
    println!("E18 — cross-layer latency attribution (payload 256 B, {packets} round trips/driver)");
    for (i, driver) in drivers.into_iter().enumerate() {
        let cfg = TestbedConfig::paper(driver, 256, packets, seed.wrapping_add(i as u64));
        let (run, metrics) = metered(vf_metrics::MetricsConfig::default(), || traced_run(&cfg));
        let rtts = run.breakdowns();
        reconcile(&run.result, &rtts)
            .unwrap_or_else(|e| panic!("{} trace fails reconciliation: {e}", driver.name()));
        println!();
        println!(
            "{} — spans reconcile with hw/sw summaries; first {} round trips:",
            driver.name(),
            rtts.len().min(5)
        );
        print!("{}", vf_trace::render_table(&rtts[..rtts.len().min(5)]));
        tracks.push((driver.name(), run.events, counter_tracks(&metrics)));
    }

    // E19 multi-queue: one Perfetto track per queue pair. The serial MQ
    // world round-robins packets over the pairs, so round-trip windows
    // never overlap and every event inside a window belongs to the pair
    // named by its root span. Bring-up events before the first round
    // trip carry no queue identity and are left out of the export.
    let mut mq_cfg = TestbedConfig::paper(DriverKind::VirtioMq, 256, packets, seed.wrapping_add(4));
    mq_cfg.options.mq_queue_pairs = 2;
    let (run, mq_metrics) = metered(vf_metrics::MetricsConfig::default(), || traced_run(&mq_cfg));
    let rtts = run.breakdowns();
    reconcile(&run.result, &rtts)
        .unwrap_or_else(|e| panic!("VirtIO-MQ trace fails reconciliation: {e}"));
    println!();
    println!(
        "VirtIO-MQ (2 queue pairs) — spans reconcile; first {} round trips:",
        rtts.len().min(5)
    );
    print!("{}", vf_trace::render_table(&rtts[..rtts.len().min(5)]));
    let mut per_queue: Vec<Vec<vf_trace::TraceEvent>> = vec![Vec::new(), Vec::new()];
    for ev in &run.events {
        let idx = rtts.partition_point(|r| r.t1 < ev.t);
        if let Some(rtt) = rtts.get(idx) {
            if ev.t >= rtt.t0 {
                let q = if rtt.name.ends_with("q0") { 0 } else { 1 };
                per_queue[q].push(ev.clone());
            }
        }
    }
    // Counter series are per-run, not per-window: q0 carries them all.
    tracks.push((
        "VirtIO-MQ q0",
        per_queue.remove(0),
        counter_tracks(&mq_metrics),
    ));
    tracks.push(("VirtIO-MQ q1", per_queue.remove(0), Vec::new()));

    // E21 multi-tenant: one Perfetto track per tenant, vhost backend
    // on. Same window argument as the MQ export — the serial tenant
    // world round-robins, so each event falls inside exactly one
    // tenant-named round trip.
    let mut tnt_cfg =
        TestbedConfig::paper(DriverKind::VirtioTenant, 256, packets, seed.wrapping_add(5));
    tnt_cfg.options.mq_queue_pairs = 2;
    tnt_cfg.options.tenant_vhost = true;
    let (run, tnt_metrics) = metered(vf_metrics::MetricsConfig::default(), || {
        traced_run(&tnt_cfg)
    });
    let rtts = run.breakdowns();
    reconcile(&run.result, &rtts)
        .unwrap_or_else(|e| panic!("VirtIO-TNT trace fails reconciliation: {e}"));
    println!();
    println!(
        "VirtIO-TNT (2 tenants, vhost) — spans reconcile; first {} round trips:",
        rtts.len().min(5)
    );
    print!("{}", vf_trace::render_table(&rtts[..rtts.len().min(5)]));
    let mut per_tenant: Vec<Vec<vf_trace::TraceEvent>> = vec![Vec::new(), Vec::new()];
    for ev in &run.events {
        let idx = rtts.partition_point(|r| r.t1 < ev.t);
        if let Some(rtt) = rtts.get(idx) {
            if ev.t >= rtt.t0 {
                let t = if rtt.name.ends_with("t0") { 0 } else { 1 };
                per_tenant[t].push(ev.clone());
            }
        }
    }
    tracks.push((
        "VirtIO-TNT t0",
        per_tenant.remove(0),
        counter_tracks(&tnt_metrics),
    ));
    tracks.push(("VirtIO-TNT t1", per_tenant.remove(0), Vec::new()));

    let refs: Vec<(&str, &[vf_trace::TraceEvent], &[vf_trace::CounterTrack])> = tracks
        .iter()
        .map(|(n, e, c)| (*n, e.as_slice(), c.as_slice()))
        .collect();
    let counters: usize = tracks.iter().map(|(_, _, c)| c.len()).sum();
    std::fs::write(out, vf_trace::chrome_trace_json_full(&refs)).expect("writing trace JSON");
    println!();
    println!(
        "Perfetto trace ({} tracks, {} counter series) written to {} — load it at https://ui.perfetto.dev",
        refs.len(),
        counters,
        out.display()
    );
}

/// A named world for the metrics artifact: runs to completion and
/// returns its verify-failure count.
type MeteredWorld<'a> = (&'a str, Box<dyn FnOnce() -> u64>);

/// The E23 metrics artifact: run one metered MQ world, one metered
/// out-of-order world, and one metered multi-tenant world (all healthy
/// by construction), print each world's per-layer report, assert every
/// watchdog stayed quiet, and export the sampled series as JSON/CSV.
fn run_metrics_artifact(
    out: &PathBuf,
    csv_dir: Option<&std::path::Path>,
    packets: usize,
    seed: u64,
) {
    use virtio_fpga::experiments::MQ_SWEEP_DEPTH;
    use virtio_fpga::{metered, run_mq, run_tenants, TestbedConfig};

    println!("E23 — sampled per-layer metrics + invariant watchdogs ({packets} packets/world)");
    let worlds: [MeteredWorld; 3] = [
        (
            "mq",
            Box::new(move || {
                let mut cfg = TestbedConfig::paper(DriverKind::VirtioMq, 256, packets, seed);
                cfg.options.mq_queue_pairs = 4;
                run_mq(&cfg, MQ_SWEEP_DEPTH).verify_failures
            }),
        ),
        (
            "ooo",
            Box::new(move || {
                let mut cfg =
                    TestbedConfig::paper(DriverKind::VirtioMq, 256, packets, seed.wrapping_add(1));
                cfg.options.mq_queue_pairs = 4;
                cfg.options.pipeline_depth = 4;
                run_mq(&cfg, MQ_SWEEP_DEPTH).verify_failures
            }),
        ),
        (
            "tenants",
            Box::new(move || {
                let mut cfg = TestbedConfig::paper(
                    DriverKind::VirtioTenant,
                    256,
                    packets,
                    seed.wrapping_add(2),
                );
                cfg.options.mq_queue_pairs = 4;
                cfg.options.tenant_vhost = true;
                cfg.options.tenant_policy = virtio_fpga::ArbiterPolicy::WeightedShare;
                run_tenants(&cfg, MQ_SWEEP_DEPTH).verify_failures
            }),
        ),
    ];

    let mut json = String::from("{");
    for (i, (name, world)) in worlds.into_iter().enumerate() {
        let (verify_failures, report) = metered(vf_metrics::MetricsConfig::default(), world);
        assert_eq!(verify_failures, 0, "{name}: payload verification failed");
        let mut required = vec!["pcie", "virtio", "fpga", "sim"];
        if name == "tenants" {
            required.push("tenant");
        }
        report
            .validate(&required)
            .unwrap_or_else(|e| panic!("{name}: metrics schema invalid: {e}"));
        assert!(
            report.violations.is_empty(),
            "{name}: watchdogs flagged a healthy world: {:?}",
            report.violations
        );
        println!();
        print!("{}", report.render(name));
        println!("watchdogs: quiet ({} samples)", report.samples);
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!("\"{name}\":{}", report.to_json()));
        if let Some(dir) = csv_dir {
            std::fs::create_dir_all(dir).expect("creating CSV dir");
            let path = dir.join(format!("metrics_{name}.csv"));
            std::fs::write(&path, report.to_csv()).expect("writing metrics CSV");
            println!("series CSV written to {}", path.display());
        }
    }
    json.push('}');
    std::fs::write(out, json).expect("writing metrics JSON");
    println!();
    println!("metrics time-series JSON written to {}", out.display());
}

/// Dump the measurement matrix as CSV: one summaries file plus one raw
/// per-packet samples file per (driver, payload) cell — gnuplot/pandas
/// ready.
fn write_matrix_csv(dir: &PathBuf, m: &mut experiments::Matrix) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut summary = std::fs::File::create(dir.join("summary.csv"))?;
    writeln!(
        summary,
        "driver,payload,n,mean_us,std_us,min_us,p25_us,median_us,p75_us,p95_us,p99_us,p999_us,max_us,hw_mean_us,sw_mean_us"
    )?;
    for driver in [DriverKind::Virtio, DriverKind::Xdma] {
        for &payload in &PAPER_PAYLOADS {
            let cell = m.cell(driver, payload);
            let s = cell.total_summary();
            let hw = cell.hw_summary();
            let sw = cell.sw_summary();
            writeln!(
                summary,
                "{},{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}",
                cell.driver.name(),
                payload,
                s.n,
                s.mean_us,
                s.std_us,
                s.min_us,
                s.p25_us,
                s.median_us,
                s.p75_us,
                s.p95_us,
                s.p99_us,
                s.p999_us,
                s.max_us,
                hw.mean_us,
                sw.mean_us
            )?;
            let name = format!(
                "samples_{}_{}B.csv",
                cell.driver.name().to_lowercase(),
                payload
            );
            let mut f = std::fs::File::create(dir.join(name))?;
            writeln!(f, "total_us,hw_us,sw_us")?;
            for ((t, h), w) in cell
                .total
                .raw()
                .iter()
                .zip(cell.hw.raw())
                .zip(cell.sw.raw())
            {
                writeln!(f, "{t:.3},{h:.3},{w:.3}")?;
            }
        }
    }
    Ok(())
}

fn print_usage() {
    eprintln!(
        "usage: repro [--packets N] [--seed S] [--shards N] [--quick] [--csv DIR] [--out FILE] [--trace FILE] <artifact>...\n\
         artifacts: fig3 fig4 fig5 table1 portability xdma-irq-ablation\n\
         \u{20}          virtio-features bypass devtypes csum-offload noise-sweep\n\
         \u{20}          pipeline deployment card-memory pmd pmd-crossover packed\n\
         \u{20}          mq ooo tenants blk trace metrics all"
    );
}
