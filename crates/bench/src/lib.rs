//! # vf-bench — benchmark harness
//!
//! Rendering helpers shared by the `repro` binary (which regenerates
//! every figure and table of the paper) and the Criterion benches.

#![warn(missing_docs)]

use virtio_fpga::experiments::{
    BlkStorageRow, BreakdownRow, BypassRow, CsumRow, DeviceTypeRow, Fig3Row, NoiseRow, NoisyRow,
    PackedRow, PmdCrossoverRow, PmdTailsRow, PortabilityRow, Table1Row, TenantRow,
    VirtioFeatureRow, XdmaIrqRow,
};
use virtio_fpga::{render_breakdown, render_table1, DriverKind};

/// Render the Fig. 3 distribution comparison as text (per-payload
/// summaries plus ASCII distribution sparklines).
pub fn render_fig3(rows: &[Fig3Row]) -> String {
    let mut out = String::from(
        "Fig. 3 — Round-trip latency distribution (us)\npayload  driver   mean    sd    min    p25    med    p75    p95    max   distribution 0-120us\n",
    );
    for r in rows {
        for (name, s, h) in [
            ("VirtIO", &r.virtio, &r.virtio_hist),
            ("XDMA", &r.xdma, &r.xdma_hist),
        ] {
            out.push_str(&format!(
                "{:>6}B  {:<7}{:>6.1}{:>6.1}{:>7.1}{:>7.1}{:>7.1}{:>7.1}{:>7.1}{:>7.1}   |{}|\n",
                r.payload,
                name,
                s.mean_us,
                s.std_us,
                s.min_us,
                s.p25_us,
                s.median_us,
                s.p75_us,
                s.p95_us,
                s.max_us,
                h.sparkline()
            ));
        }
    }
    out
}

/// Render a Fig. 4 or Fig. 5 breakdown.
pub fn render_fig45(driver: DriverKind, rows: &[BreakdownRow]) -> String {
    let pairs: Vec<(usize, vf_sim::Summary, vf_sim::Summary)> =
        rows.iter().map(|r| (r.payload, r.sw, r.hw)).collect();
    render_breakdown(driver, &pairs)
}

/// Render Table I.
pub fn render_tails(rows: &[Table1Row]) -> String {
    let pairs: Vec<(usize, vf_sim::Summary, vf_sim::Summary)> =
        rows.iter().map(|r| (r.payload, r.virtio, r.xdma)).collect();
    render_table1(&pairs)
}

/// Render the E5 portability sweep.
pub fn render_portability(rows: &[PortabilityRow]) -> String {
    let mut out = String::from(
        "E5 — Portability sweep (1 KiB payload, mean / p95 us)\nlink        | VirtIO mean  p95 | XDMA mean   p95\n------------+------------------+----------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:?} x{:<3}   | {:>8.1} {:>6.1} | {:>8.1} {:>6.1}\n",
            r.gen, r.lanes, r.virtio.mean_us, r.virtio.p95_us, r.xdma.mean_us, r.xdma.p95_us
        ));
    }
    out
}

/// Render the E6 XDMA interrupt ablation.
pub fn render_xdma_irq(rows: &[XdmaIrqRow]) -> String {
    let mut out = String::from(
        "E6 — XDMA with the real data-ready interrupt (mean us)\npayload | back-to-back (paper setup) | with device IRQ | penalty\n--------+----------------------------+-----------------+--------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>6}B | {:>26.1} | {:>15.1} | {:>+6.1}\n",
            r.payload,
            r.back_to_back.mean_us,
            r.with_irq.mean_us,
            r.with_irq.mean_us - r.back_to_back.mean_us
        ));
    }
    out
}

/// Render the E7 VirtIO feature ablation.
pub fn render_virtio_features(rows: &[VirtioFeatureRow]) -> String {
    let mut out = String::from(
        "E7 — VirtIO transport ablation (256 B payload)\nevent_idx queue | mean(us)  p95(us) | doorbells   irqs\n----------------+-------------------+-----------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>9} {:>5} | {:>8.1} {:>8.1} | {:>9} {:>6}\n",
            r.event_idx, r.queue_size, r.total.mean_us, r.total.p95_us, r.notifications, r.irqs
        ));
    }
    out
}

/// Render the E8 bypass-interface measurement.
pub fn render_bypass(rows: &[BypassRow]) -> String {
    let mut out = String::from(
        "E8 — Driver-bypass DMA interface (us)\nsize   | dev read | dev write | round trip | full driver path (1 KiB)\n-------+----------+-----------+------------+-------------------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>5}B | {:>8.2} | {:>9.2} | {:>10.2} | {:>8.1}\n",
            r.size, r.read_us, r.write_us, r.round_trip_us, r.driver_path_us
        ));
    }
    out
}

/// Render the E9 device-type comparison.
pub fn render_device_types(rows: &[DeviceTypeRow]) -> String {
    let mut out = String::from(
        "E9 — Device types (VirtIO framework, mean / p95 us)\ndevice          payload |  mean   p95\n------------------------+-------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<15} {:>6}B | {:>5.1} {:>5.1}\n",
            r.device_type.name(),
            r.payload,
            r.total.mean_us,
            r.total.p95_us
        ));
    }
    out
}

/// Render the E10 checksum-offload ablation.
pub fn render_csum(rows: &[CsumRow]) -> String {
    let mut out = String::from(
        "E10 — Checksum offload (mean us)\npayload | total sw-csum | total offload | sw-component sw-csum → offload\n--------+---------------+---------------+-------------------------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>6}B | {:>13.1} | {:>13.1} | {:>13.2} → {:.2}\n",
            r.payload,
            r.sw_csum.mean_us,
            r.offload.mean_us,
            r.sw_component_sw_csum,
            r.sw_component_offload
        ));
    }
    out
}

/// Render the E11 noise sweep.
pub fn render_noise(rows: &[NoiseRow]) -> String {
    let mut out = String::from(
        "E11 — Host-noise sensitivity (256 B payload, us)\nscale | VirtIO mean   sd   p95  p99.9 | XDMA mean   sd   p95  p99.9\n------+-------------------------------+----------------------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>5.1} | {:>8.1} {:>5.1} {:>5.1} {:>6.1} | {:>7.1} {:>5.1} {:>5.1} {:>6.1}\n",
            r.scale,
            r.virtio.mean_us,
            r.virtio.std_us,
            r.virtio.p95_us,
            r.virtio.p999_us,
            r.xdma.mean_us,
            r.xdma.std_us,
            r.xdma.p95_us,
            r.xdma.p999_us
        ));
    }
    out
}

/// Render the E12 pipelined-throughput comparison.
pub fn render_pipeline(rows: &[virtio_fpga::experiments::PipelineRow]) -> String {
    let mut out = String::from(
        "E12 — Pipelined throughput (256 B payload)\ndepth | VirtIO pps | latency(us) | doorbells/pkt | irqs/pkt | XDMA serial pps\n------+------------+-------------+---------------+----------+----------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>5} | {:>10.0} | {:>11.1} | {:>13.3} | {:>8.3} | {:>14.0}\n",
            r.depth,
            r.virtio_pps,
            r.virtio_latency_us,
            r.doorbells_per_packet,
            r.irqs_per_packet,
            r.xdma_serial_pps
        ));
    }
    out
}

/// Render the E13 deployment-model comparison.
pub fn render_deployment(rows: &[virtio_fpga::experiments::DeploymentRow]) -> String {
    let mut out = String::from(
        "E13 — Deployment models (mean / p95 us), quantifying the paper's Fig. 1\npayload | direct VirtIO-FPGA | raw XDMA        | paravirt (backend+legacy)\n--------+--------------------+-----------------+--------------------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>6}B | {:>8.1} / {:>6.1} | {:>6.1} / {:>6.1} | {:>10.1} / {:>6.1}\n",
            r.payload,
            r.direct_virtio.mean_us,
            r.direct_virtio.p95_us,
            r.raw_xdma.mean_us,
            r.raw_xdma.p95_us,
            r.paravirt.mean_us,
            r.paravirt.p95_us
        ));
    }
    out
}

/// Render the E14 card-memory ablation.
pub fn render_card_memory(rows: &[virtio_fpga::experiments::CardMemRow]) -> String {
    let mut out = String::from(
        "E14 — Card memory: BRAM vs external DDR (mean us)\npayload | VirtIO bram  ddr | XDMA bram   ddr\n--------+------------------+-----------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>6}B | {:>9.1} {:>5.1} | {:>8.1} {:>5.1}\n",
            r.payload,
            r.virtio_bram.mean_us,
            r.virtio_ddr.mean_us,
            r.xdma_bram.mean_us,
            r.xdma_ddr.mean_us
        ));
    }
    out
}

/// Render the E15 three-way tail comparison (kernel VirtIO vs the
/// `vf-pmd` poll-mode driver vs XDMA).
pub fn render_pmd(rows: &[PmdTailsRow]) -> String {
    let mut out = String::from(
        "E15 — Poll-mode driver vs kernel drivers (us)\npayload | driver      mean    sd    med    p95    p99  p99.9 | p99-med\n--------+------------------------------------------------------+--------\n",
    );
    for r in rows {
        for (name, s) in [
            ("VirtIO", &r.virtio),
            ("VirtIO-PMD", &r.pmd),
            ("XDMA", &r.xdma),
        ] {
            out.push_str(&format!(
                "{:>6}B | {:<10}{:>6.1}{:>6.1}{:>7.1}{:>7.1}{:>7.1}{:>7.1} | {:>6.1}\n",
                r.payload,
                name,
                s.mean_us,
                s.std_us,
                s.median_us,
                s.p95_us,
                s.p99_us,
                s.p999_us,
                s.p99_us - s.median_us
            ));
        }
    }
    out
}

/// Render the E16 poll-vs-interrupt crossover.
pub fn render_pmd_crossover(rows: &[PmdCrossoverRow]) -> String {
    let mut out = String::from(
        "E16 — Poll-vs-interrupt crossover (256 B payload)\nload(pps) | busy mean(us) cpu(us/pkt) kcyc | adaptive mean(us) cpu(us/pkt) fallbacks | kernel mean(us) cpu(us/pkt)\n----------+--------------------------------+-----------------------------------------+----------------------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>9} | {:>13.1} {:>11.1} {:>4.0} | {:>17.1} {:>11.1} {:>9} | {:>15.1} {:>11.1}\n",
            r.load_pps,
            r.busy.mean_us,
            r.busy_cpu_us,
            r.busy_kcycles,
            r.adaptive.mean_us,
            r.adaptive_cpu_us,
            r.adaptive_fallbacks,
            r.kernel.mean_us,
            r.kernel_cpu_us
        ));
    }
    out
}

/// Render the E17 split-vs-packed ring comparison.
pub fn render_packed(rows: &[PackedRow]) -> String {
    let mut out = String::from(
        "E17 — Split vs packed virtqueue layout (us)\npayload | layout   mean    sd    med    p95    p99 | desc reads/pkt\n--------+-------------------------------------------+---------------\n",
    );
    for r in rows {
        for (name, s, reads) in [
            ("split", &r.split, r.split_desc_reads_per_packet),
            ("packed", &r.packed, r.packed_desc_reads_per_packet),
        ] {
            out.push_str(&format!(
                "{:>6}B | {:<7}{:>6.1}{:>6.1}{:>7.1}{:>7.1}{:>7.1} | {:>13.2}\n",
                r.payload, name, s.mean_us, s.std_us, s.median_us, s.p95_us, s.p99_us, reads
            ));
        }
    }
    out
}

/// Render one payload's E19 multi-queue scaling sweep.
pub fn render_mq(payload: usize, rows: &[virtio_fpga::experiments::MqRow]) -> String {
    let mut out = format!(
        "E19 — Multi-queue scaling ({payload} B payload, depth {}/queue)\nqueues | aggregate pps | speedup | latency(us) | doorbells/pkt | irqs/pkt | link up/down\n-------+---------------+---------+-------------+---------------+----------+-------------\n",
        virtio_fpga::experiments::MQ_SWEEP_DEPTH
    );
    for r in rows {
        out.push_str(&format!(
            "{:>6} | {:>13.0} | {:>7.2} | {:>11.1} | {:>13.3} | {:>8.3} | {:>4.0}% / {:>3.0}%\n",
            r.queues,
            r.pps,
            r.speedup,
            r.latency_us,
            r.doorbells_per_packet,
            r.irqs_per_packet,
            r.link_util_up * 100.0,
            r.link_util_down * 100.0
        ));
    }
    out
}

/// Render one payload's E20 out-of-order descriptor-pipeline sweep.
pub fn render_ooo(payload: usize, rows: &[virtio_fpga::experiments::OooRow]) -> String {
    let mut out = format!(
        "E20 — Out-of-order descriptor pipeline ({payload} B payload, window {}/queue)\nlayout | queues | depth | aggregate pps | speedup | link up/down | peak NP | bottleneck\n-------+--------+-------+---------------+---------+--------------+---------+-----------\n",
        virtio_fpga::experiments::MQ_SWEEP_DEPTH
    );
    for r in rows {
        out.push_str(&format!(
            "{:<6} | {:>6} | {:>5} | {:>13.0} | {:>7.2} | {:>4.0}% / {:>3.0}% | {:>7} | {}\n",
            r.layout,
            r.queues,
            r.depth,
            r.pps,
            r.speedup,
            r.link_util_up * 100.0,
            r.link_util_down * 100.0,
            r.peak_np_inflight,
            r.bottleneck
        ));
    }
    out
}

/// Render one payload's E21 multi-tenant scaling sweep.
pub fn render_tenants(payload: usize, rows: &[TenantRow]) -> String {
    let mut out = format!(
        "E21 — Multi-tenant vhost multiplexing ({payload} B payload, window {}/tenant)\npolicy          | tenants | aggregate pps | worst p99(us) |  jain | queued | link up/down\n----------------+---------+---------------+---------------+-------+--------+-------------\n",
        virtio_fpga::experiments::MQ_SWEEP_DEPTH
    );
    for r in rows {
        out.push_str(&format!(
            "{:<15} | {:>7} | {:>13.0} | {:>13.1} | {:>5.3} | {:>5.1}% | {:>4.0}% / {:>3.0}%\n",
            r.policy,
            r.tenants,
            r.pps,
            r.worst_p99_us,
            r.jain,
            r.queued_frac * 100.0,
            r.link_util_up * 100.0,
            r.link_util_down * 100.0
        ));
    }
    out
}

/// Render the E21 noisy-neighbor isolation experiment.
pub fn render_noisy(payload: usize, rows: &[NoisyRow]) -> String {
    let mut out = format!(
        "E21 — Noisy neighbor ({} tenants, {payload} B payload; tenant 0: top priority, 4x window)\npolicy          | aggregate pps | noisy pps | victim p99(us) | baseline p99 | inflation |  jain\n----------------+---------------+-----------+----------------+--------------+-----------+------\n",
        virtio_fpga::experiments::NOISY_TENANTS
    );
    for r in rows {
        out.push_str(&format!(
            "{:<15} | {:>13.0} | {:>9.0} | {:>14.1} | {:>12.1} | {:>8.2}x | {:>5.3}\n",
            r.policy,
            r.pps,
            r.noisy_pps,
            r.victim_p99_us,
            r.baseline_p99_us,
            r.p99_inflation,
            r.jain
        ));
    }
    out
}

/// Render the E24 storage sweep: one line per (workload, depth) virtio
/// point plus the depth-less XDMA baseline line per workload.
pub fn render_blk(rows: &[BlkStorageRow]) -> String {
    let mut out = String::from(
        "E24 — virtio-blk storage sweep vs XDMA character device\nworkload     io     driver      QD |    IOPS |    MB/s | mean(us) p99(us) | doorbells/req irqs/req\n-------------------+---------------+---------+---------+------------------+-----------------------\n",
    );
    for r in rows {
        let io = if r.io_bytes >= 1024 {
            format!("{}K", r.io_bytes / 1024)
        } else {
            format!("{}B", r.io_bytes)
        };
        for p in &r.points {
            out.push_str(&format!(
                "{:<11} {:>5}  virtio-blk {:>3} | {:>7.0} | {:>7.1} | {:>8.1} {:>7.1} | {:>13.3} {:>8.3}\n",
                r.pattern.name(),
                io,
                p.depth,
                p.iops,
                p.mbps,
                p.latency.mean_us,
                p.latency.p99_us,
                p.doorbells_per_request,
                p.irqs_per_request
            ));
        }
        out.push_str(&format!(
            "{:<11} {:>5}  xdma         - | {:>7.0} | {:>7.1} | {:>8.1} {:>7.1} | {:>13.3} {:>8.3}\n",
            r.pattern.name(),
            io,
            r.xdma.iops,
            r.xdma.mbps,
            r.xdma.latency.mean_us,
            r.xdma.latency.p99_us,
            r.xdma.doorbells_per_request,
            r.xdma.irqs_per_request
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtio_fpga::experiments::{self, ExperimentParams};

    #[test]
    fn renderers_produce_full_tables() {
        let params = ExperimentParams {
            packets: 150,
            seed: 19,
            threads: 8,
            shards: 1,
        };
        let mut m = experiments::run_matrix(params);
        let f3 = render_fig3(&experiments::fig3(&mut m));
        assert_eq!(f3.lines().count(), 12); // header + 10 rows + title
        assert!(f3.contains("VirtIO") && f3.contains("XDMA"));
        let f4 = render_fig45(DriverKind::Virtio, &experiments::fig4(&mut m));
        assert!(f4.contains("VirtIO driver"));
        let t1 = render_tails(&experiments::table1(&mut m));
        assert!(t1.contains("99.9%"));
        assert_eq!(t1.lines().count(), 8);
    }

    #[test]
    fn pmd_renders() {
        let params = ExperimentParams {
            packets: 150,
            seed: 23,
            threads: 8,
            shards: 1,
        };
        let s = render_pmd(&experiments::pmd_tails(params));
        assert!(s.contains("VirtIO-PMD"));
        assert_eq!(s.lines().count(), 3 + 15); // title + 2 header + 5×3 rows
        let c = render_pmd_crossover(&experiments::pmd_crossover(params));
        assert!(c.contains("40000"));
        assert_eq!(c.lines().count(), 3 + 5);
    }

    #[test]
    fn packed_renders() {
        let params = ExperimentParams {
            packets: 150,
            seed: 29,
            threads: 8,
            shards: 1,
        };
        let s = render_packed(&experiments::packed_ring(params));
        assert!(s.contains("packed"));
        assert_eq!(s.lines().count(), 3 + 10); // title + 2 header + 5×2 rows
    }

    #[test]
    fn mq_renders_and_scales() {
        let params = ExperimentParams {
            packets: 600,
            seed: 31,
            threads: 8,
            shards: 1,
        };
        let rows = experiments::mq_scaling(params, 256);
        let s = render_mq(256, &rows);
        assert!(s.contains("E19"));
        assert_eq!(s.lines().count(), 3 + 5); // title + 2 header + 5 queue counts
        assert!((rows[0].speedup - 1.0).abs() < 1e-12);
        assert!(rows[1].pps > rows[0].pps, "2 queues must beat 1");
        // Regression pins: pairs print in numeric sweep order, and the
        // summary table carries the link-occupancy column (E20's
        // crossover must be readable without opening a trace).
        assert!(
            rows.windows(2).all(|w| w[0].queues < w[1].queues),
            "queue rows out of numeric order"
        );
        assert!(s.contains("link up/down"));
        for line in s.lines().skip(3) {
            assert!(line.contains('%'), "row without link occupancy: {line}");
        }
    }

    #[test]
    fn ooo_renders_both_layouts() {
        let params = ExperimentParams {
            packets: 150,
            seed: 37,
            threads: 8,
            shards: 1,
        };
        let rows = experiments::pipeline_depth(params, 256);
        let s = render_ooo(256, &rows);
        assert!(s.contains("E20"));
        // title + 2 header + 2 layouts × 3 queue counts × 4 depths.
        assert_eq!(s.lines().count(), 3 + 24);
        assert!(s.contains("split") && s.contains("packed"));
        assert!(s.contains("walker") || s.contains("link"));
    }

    #[test]
    fn tenants_render_scaling_and_noisy() {
        let params = ExperimentParams {
            packets: 600,
            seed: 41,
            threads: 8,
            shards: 1,
        };
        let rows = experiments::tenant_scaling(params, 256);
        let s = render_tenants(256, &rows);
        assert!(s.contains("E21"));
        // title + 2 header + 3 policies × 7 tenant counts.
        assert_eq!(s.lines().count(), 3 + 21);
        assert!(s.contains("round-robin") && s.contains("weighted-share"));
        assert!(
            rows.iter().all(|r| r.jain > 0.0 && r.jain <= 1.0 + 1e-12),
            "Jain index out of [0, 1]"
        );
        let noisy = experiments::noisy_neighbor(params, 256);
        let n = render_noisy(256, &noisy);
        assert!(n.contains("E21") && n.contains("inflation"));
        assert_eq!(n.lines().count(), 3 + 3); // title + 2 header + 3 policies
    }

    #[test]
    fn blk_renders_every_cell() {
        let rows = experiments::blk_storage(ExperimentParams {
            packets: 200,
            seed: 43,
            threads: 8,
            shards: 1,
        });
        let s = render_blk(&rows);
        assert!(s.contains("E24"));
        // title + 2 header + 4 workloads × (6 depths + 1 XDMA line).
        assert_eq!(
            s.lines().count(),
            3 + experiments::BLK_WORKLOADS.len() * (experiments::BLK_DEPTHS.len() + 1)
        );
        assert!(s.contains("rand-read") && s.contains("seq-write"));
        assert!(s.contains("128K") && s.contains("4K"));
        assert!(s.contains("xdma"));
    }

    #[test]
    fn bypass_render() {
        let rows = experiments::bypass(ExperimentParams {
            packets: 150,
            seed: 1,
            threads: 2,
            shards: 1,
        });
        let s = render_bypass(&rows);
        assert!(s.contains("4096B"));
    }
}
