//! Property tests on the statistics and noise layers: percentile
//! correctness against a naive reference, Welford numerical agreement,
//! noise-model bounds, and RNG stream independence.

use proptest::collection::vec;
use proptest::prelude::*;

use vf_sim::{Jitter, NoiseModel, SampleSet, SimRng, SpikeClass, Time, Welford};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn percentile_matches_naive_nearest_rank(
        samples in vec(0.0f64..1e6, 1..400),
        p in 0.0f64..100.0,
    ) {
        let mut set = SampleSet::from_us(samples.clone());
        let got = set.percentile(p);
        // Naive nearest-rank reference.
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = p / 100.0 * sorted.len() as f64;
        let rank = if (exact - exact.round()).abs() < 1e-6 {
            exact.round() as usize
        } else {
            exact.ceil() as usize
        };
        let want = sorted[rank.clamp(1, sorted.len()) - 1];
        prop_assert_eq!(got, want);
    }

    #[test]
    fn summary_orderings_hold(samples in vec(0.0f64..1e5, 2..500)) {
        let mut set = SampleSet::from_us(samples);
        let s = set.summary();
        prop_assert!(s.min_us <= s.p25_us);
        prop_assert!(s.p25_us <= s.median_us);
        prop_assert!(s.median_us <= s.p75_us);
        prop_assert!(s.p75_us <= s.p95_us);
        prop_assert!(s.p95_us <= s.p99_us);
        prop_assert!(s.p99_us <= s.p999_us);
        prop_assert!(s.p999_us <= s.max_us);
        prop_assert!(s.min_us <= s.mean_us && s.mean_us <= s.max_us);
        prop_assert!(s.std_us >= 0.0);
    }

    #[test]
    fn welford_matches_two_pass(samples in vec(-1e6f64..1e6, 2..400)) {
        let mut w = Welford::new();
        for &x in &samples {
            w.add(x);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.std_dev() - var.sqrt()).abs() < 1e-5 * (1.0 + var.sqrt()));
        prop_assert_eq!(w.count(), samples.len() as u64);
    }

    #[test]
    fn histogram_total_always_matches(
        samples in vec(-50.0f64..200.0, 1..300),
        bins in 1usize..64,
    ) {
        let set = SampleSet::from_us(samples.clone());
        let h = set.histogram(0.0, 100.0, bins);
        prop_assert_eq!(h.total(), samples.len() as u64);
    }

    #[test]
    fn noise_never_reduces_base(base_ns in 0u64..100_000, seed in any::<u64>()) {
        let model = NoiseModel {
            scale: 1.0,
            step_jitter: Jitter {
                median: Time::from_ns(150),
                sigma: 1.2,
            },
            spikes: vec![SpikeClass {
                prob: 0.1,
                min: Time::from_us(2),
                alpha: 2.0,
                cap: Time::from_us(50),
            }],
        };
        let mut rng = SimRng::new(seed);
        let base = Time::from_ns(base_ns);
        for _ in 0..50 {
            prop_assert!(model.sw_step(&mut rng, base) >= base);
        }
    }

    #[test]
    fn spike_caps_respected(seed in any::<u64>(), cap_us in 1u64..100) {
        let class = SpikeClass {
            prob: 1.0,
            min: Time::from_ns(500),
            alpha: 0.8, // heavy tail to stress the cap
            cap: Time::from_us(cap_us),
        };
        let mut rng = SimRng::new(seed);
        for _ in 0..200 {
            prop_assert!(class.sample(&mut rng) <= Time::from_us(cap_us));
        }
    }

    #[test]
    fn derived_streams_unrelated(seed in any::<u64>(), tag_a in any::<u64>(), tag_b in any::<u64>()) {
        prop_assume!(tag_a != tag_b);
        let root = SimRng::new(seed);
        let mut a = root.derive(tag_a);
        let mut b = root.derive(tag_b);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        prop_assert_ne!(va, vb);
    }

    #[test]
    fn time_quantize_bounds(ps in any::<u64>(), tick_pow in 0u32..20) {
        let tick = Time::from_ps(1u64 << tick_pow);
        let t = Time::from_ps(ps);
        let q = t.quantize(tick);
        prop_assert!(q <= t);
        prop_assert!(t.as_ps() - q.as_ps() < tick.as_ps());
        prop_assert_eq!(q.as_ps() % tick.as_ps(), 0);
    }
}
