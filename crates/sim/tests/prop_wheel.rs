//! Differential property tests: the timing-wheel engine must be
//! **event-for-event identical** to the reference binary-heap engine.
//!
//! A scripted world turns each delivered message into a deterministic
//! burst of follow-up events — mixing `after`, absolute `at` (including
//! past instants that must clamp to now), and `now_msg`, with delays that
//! exercise every wheel level plus the sorted overflow — and logs every
//! delivery. Running the same script under [`Simulation`] (timing wheel)
//! and [`HeapSimulation`] (reference heap) must produce the same log,
//! the same clock, and the same event counts at every observation point.

use proptest::collection::vec;
use proptest::prelude::*;

use vf_sim::baseline::HeapSimulation;
use vf_sim::{RunOutcome, Scheduler, Simulation, Time, World};

/// How a delivered event schedules its children.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// `after(delay)` — relative delay in picoseconds.
    After(u64),
    /// `at(now - back)` — absolute instant, possibly in the past (clamps).
    AtBack(u64),
    /// `at(now + fwd)` — absolute future instant.
    AtForward(u64),
    /// `now_msg` — same-instant burst.
    Now,
}

/// A deterministic branching program: message `id` looks up its fan-out.
#[derive(Clone, Debug)]
struct Script {
    /// Per-delivery fan-out ops, indexed by `id % ops.len()`.
    ops: Vec<Vec<Op>>,
    /// Each delivery spawns children until this many total have been made,
    /// bounding the run.
    max_spawns: u32,
}

/// World interpreting a [`Script`], logging `(time, id)` per delivery.
struct Scripted {
    script: Script,
    spawned: u32,
    log: Vec<(Time, u32)>,
}

impl Scripted {
    fn new(script: Script) -> Self {
        Scripted {
            script,
            spawned: 0,
            log: Vec::new(),
        }
    }
}

impl World for Scripted {
    type Msg = u32;

    fn deliver(&mut self, now: Time, id: u32, sched: &mut Scheduler<u32>) {
        self.log.push((now, id));
        let ops = &self.script.ops[id as usize % self.script.ops.len()];
        for (k, op) in ops.iter().enumerate() {
            if self.spawned >= self.script.max_spawns {
                return;
            }
            self.spawned += 1;
            let child = id.wrapping_mul(31).wrapping_add(k as u32 + 1);
            match *op {
                Op::After(ps) => sched.after(Time::from_ps(ps), child),
                Op::AtBack(ps) => sched.at(now.saturating_sub(Time::from_ps(ps)), child),
                Op::AtForward(ps) => sched.at(now + Time::from_ps(ps), child),
                Op::Now => sched.now_msg(child),
            }
        }
    }
}

/// Delay strategy spanning every wheel level and the overflow heap:
/// same-instant (0), sub-slot ps, ns, µs, ms, multi-second, and
/// beyond-horizon (> 2^36 ps ≈ 68.7 s) values.
fn delay_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        1u64..64,
        64u64..4096,
        1_000u64..1_000_000,
        1_000_000u64..1_000_000_000,
        1_000_000_000u64..1_000_000_000_000,
        // Straddles the 2^36 ps wheel horizon from either side.
        60_000_000_000_000u64..80_000_000_000_000,
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        delay_strategy().prop_map(Op::After),
        delay_strategy().prop_map(Op::AtBack),
        delay_strategy().prop_map(Op::AtForward),
        Just(Op::Now),
    ]
}

fn script_strategy() -> impl Strategy<Value = Script> {
    (vec(vec(op_strategy(), 0..4), 1..8), 50u32..400)
        .prop_map(|(ops, max_spawns)| Script { ops, max_spawns })
}

const BUDGET: u64 = 5_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Full-run equivalence: seed events, run both engines to idle (under
    /// the same generous budget — scripts that livelock via `now_msg` stop
    /// at the same delivery count), compare the complete delivery logs.
    #[test]
    fn wheel_matches_heap_event_for_event(
        script in script_strategy(),
        seeds in vec((delay_strategy(), 0u32..1000), 1..12),
    ) {
        let mut wheel = Simulation::new(Scripted::new(script.clone()));
        let mut heap = HeapSimulation::new(Scripted::new(script));
        for &(delay, id) in &seeds {
            wheel.schedule(Time::from_ps(delay), id);
            heap.schedule(Time::from_ps(delay), id);
        }
        let a = wheel.run(Time::MAX, BUDGET);
        let b = heap.run(Time::MAX, BUDGET);
        prop_assert_eq!(a, b);
        prop_assert_eq!(&wheel.world.log, &heap.world.log);
        prop_assert_eq!(wheel.now(), heap.now());
        prop_assert_eq!(wheel.events_delivered(), heap.events_delivered());
        prop_assert_eq!(wheel.pending(), heap.pending());
    }

    /// Stepwise equivalence with horizon pauses and mid-run stimulus: the
    /// engines must agree not just on the final log but at every paused
    /// observation point, including `pending()` while batches are split
    /// across wheel levels and the overflow, and after new events are
    /// injected between partial runs.
    #[test]
    fn wheel_matches_heap_across_paused_runs(
        script in script_strategy(),
        seeds in vec((delay_strategy(), 0u32..1000), 1..8),
        horizons in vec(delay_strategy(), 1..6),
    ) {
        let mut wheel = Simulation::new(Scripted::new(script.clone()));
        let mut heap = HeapSimulation::new(Scripted::new(script));
        for &(delay, id) in &seeds {
            wheel.schedule(Time::from_ps(delay), id);
            heap.schedule(Time::from_ps(delay), id);
        }
        let mut horizon = Time::ZERO;
        for (i, &h) in horizons.iter().enumerate() {
            horizon += Time::from_ps(h);
            let a = wheel.run(horizon, BUDGET);
            let b = heap.run(horizon, BUDGET);
            prop_assert_eq!(a, b, "outcome diverged at pause {}", i);
            prop_assert_eq!(&wheel.world.log, &heap.world.log);
            prop_assert_eq!(wheel.now(), heap.now());
            prop_assert_eq!(wheel.pending(), heap.pending());
            // Inject fresh stimulus mid-flight, including a past absolute
            // instant (must clamp identically).
            wheel.schedule_at(horizon.saturating_sub(Time::from_ps(h / 2)), 7_000 + i as u32);
            heap.schedule_at(horizon.saturating_sub(Time::from_ps(h / 2)), 7_000 + i as u32);
            wheel.schedule(Time::from_ps(h), 8_000 + i as u32);
            heap.schedule(Time::from_ps(h), 8_000 + i as u32);
        }
        let a = wheel.run(Time::MAX, BUDGET);
        let b = heap.run(Time::MAX, BUDGET);
        prop_assert_eq!(a, b);
        prop_assert_eq!(&wheel.world.log, &heap.world.log);
        prop_assert_eq!(wheel.pending(), heap.pending());
    }

    /// Single-step lockstep: `step()` must deliver identical events in
    /// identical order, with `pending()` agreeing after every single
    /// delivery (this pins cascade bookkeeping exactly, not just at run
    /// boundaries).
    #[test]
    fn wheel_matches_heap_per_step(
        script in script_strategy(),
        seeds in vec((delay_strategy(), 0u32..1000), 1..8),
    ) {
        let mut wheel = Simulation::new(Scripted::new(script.clone()));
        let mut heap = HeapSimulation::new(Scripted::new(script));
        for &(delay, id) in &seeds {
            wheel.schedule(Time::from_ps(delay), id);
            heap.schedule(Time::from_ps(delay), id);
        }
        for _ in 0..BUDGET {
            let a = wheel.step();
            let b = heap.step();
            prop_assert_eq!(a, b);
            prop_assert_eq!(wheel.world.log.last(), heap.world.log.last());
            prop_assert_eq!(wheel.now(), heap.now());
            prop_assert_eq!(wheel.pending(), heap.pending());
            if !a {
                break;
            }
        }
    }
}

/// Non-property edge cases that the random scripts are unlikely to pin
/// precisely.
#[test]
fn horizon_at_time_max_runs_to_idle() {
    struct Chain;
    impl World for Chain {
        type Msg = u32;
        fn deliver(&mut self, _: Time, n: u32, sched: &mut Scheduler<u32>) {
            if n > 0 {
                // ~70 s hops: every hop crosses the wheel horizon.
                sched.after(Time::from_secs(70), n - 1);
            }
        }
    }
    let mut sim = Simulation::new(Chain);
    sim.schedule(Time::ZERO, 10);
    assert_eq!(sim.run(Time::MAX, u64::MAX), RunOutcome::Idle);
    assert_eq!(sim.now(), Time::from_secs(700));
    assert_eq!(sim.events_delivered(), 11);
}

#[test]
fn event_at_time_max_not_cut_off_by_max_horizon() {
    struct Sink(Vec<Time>);
    impl World for Sink {
        type Msg = ();
        fn deliver(&mut self, now: Time, _: (), _: &mut Scheduler<()>) {
            self.0.push(now);
        }
    }
    let mut sim = Simulation::new(Sink(Vec::new()));
    sim.schedule_at(Time::MAX, ());
    assert_eq!(sim.run(Time::MAX, u64::MAX), RunOutcome::Idle);
    assert_eq!(sim.world.0, vec![Time::MAX]);
}
