//! Differential property tests for the sharded engine (E25).
//!
//! A scripted logical-process (LP) world runs the same randomized event
//! program two ways:
//!
//! * **monolithic** — one [`Simulation`] over all LPs, messages tagged
//!   `(lp, id)`;
//! * **sharded** — one LP per shard of a [`ShardedSimulation`], cross-LP
//!   messages through the conservative timestamp-ordered merge.
//!
//! The per-LP delivery logs must be **event-for-event identical**,
//! including across pause/resume horizons with mid-run stimulus.
//!
//! ## Timestamp uniqueness
//!
//! The monolithic engine breaks same-timestamp ties by global FIFO
//! insertion order — a *sequential-history* property no shard-parallel
//! scheme can reproduce in general. Equivalence with the monolithic run
//! is therefore exactly the tie-free case, and the scripted world makes
//! arrivals unique per destination *structurally*: every emission lands
//! on a 32 768 ps block boundary plus a residue encoding
//! `(source LP, per-source counter)`, so two distinct emissions can
//! never collide at a destination. Physical-time models satisfy the
//! same property for free (a serialized wire lands two TLPs on the same
//! picosecond exactly never); the test world just makes it syntactic.
//! Local same-instant bursts (`now_msg`) are still exercised — local
//! ties stay inside one wheel and keep staging order in both engines.
//!
//! With ties *allowed* (uniqueness off), the sharded engine still
//! guarantees determinism: delivery is a pure function of the model and
//! the shard count, independent of worker-thread count — the third
//! property pins that directly.

use proptest::collection::vec;
use proptest::prelude::*;

use vf_sim::{RunOutcome, Scheduler, ShardWorld, ShardedSimulation, Simulation, Time, World};

/// Residue-block quantum: arrival times are `block + src·4096 + ctr`,
/// so blocks must dominate every residue.
const Q: u64 = 32_768;

/// Conservative lookahead between LPs (the modeled link flight time).
const LOOKAHEAD: Time = Time::from_us(1);

/// Per-source emission counters start here; external seed stimulus uses
/// residues below it, so seeds can never collide with emissions.
const CTR_BASE: u64 = 64;

/// How a delivered event fans out.
#[derive(Clone, Copy, Debug)]
enum SOp {
    /// Local event after ~`raw` ps (same LP, same shard).
    Local(u64),
    /// Same-instant local burst (`now_msg`-shaped tie).
    Burst,
    /// Cross-LP event, at least one lookahead plus `raw` away.
    Cross(u64),
}

/// A deterministic branching program shared by every LP.
#[derive(Clone, Debug)]
struct Script {
    /// Fan-out per delivery, indexed by `id % ops.len()`.
    ops: Vec<Vec<SOp>>,
    /// Per-LP spawn budget (bounds the run; also keeps each LP's
    /// residue counter below 4096 so residues never wrap).
    max_spawns: u32,
}

/// One LP's mutable state — identical under both engines.
struct LpState {
    lp: usize,
    n: usize,
    script: Script,
    /// Stamp unique per-destination arrival times (see module docs).
    unique: bool,
    spawned: u32,
    ctr: u64,
    log: Vec<(Time, u32)>,
}

impl LpState {
    fn new(lp: usize, n: usize, script: Script, unique: bool) -> Self {
        LpState {
            lp,
            n,
            script,
            unique,
            spawned: 0,
            ctr: CTR_BASE,
            log: Vec::new(),
        }
    }

    /// Stamp `target` into this LP's unique residue slot: block
    /// boundary + `src·4096 + ctr`. The `+ Q` headroom in cross targets
    /// guarantees the rounded-down block never lands before `now + L`.
    fn stamp(&mut self, target: Time) -> Time {
        let t = (target.as_ps() & !(Q - 1)) + self.lp as u64 * 4096 + (self.ctr & 4095);
        self.ctr += 1;
        Time::from_ps(t)
    }

    /// Deliver `id` at `now`: log it and compute the fan-out as
    /// `(destination, time, child)` triples, in emission order.
    fn fire(&mut self, now: Time, id: u32) -> Vec<(usize, Time, u32)> {
        self.log.push((now, id));
        let ops = self.script.ops[id as usize % self.script.ops.len()].clone();
        let mut out = Vec::with_capacity(ops.len());
        for (k, op) in ops.iter().enumerate() {
            if self.spawned >= self.script.max_spawns {
                break;
            }
            self.spawned += 1;
            let child = id.wrapping_mul(31).wrapping_add(k as u32 + 1);
            match *op {
                SOp::Local(raw) => {
                    let t = if self.unique {
                        self.stamp(now + Time::from_ps(raw))
                    } else {
                        now + Time::from_ps(raw)
                    };
                    out.push((self.lp, t, child));
                }
                SOp::Burst => out.push((self.lp, now, child)),
                SOp::Cross(raw) => {
                    let dst = (self.lp + 1 + id as usize % (self.n - 1)) % self.n;
                    let t = if self.unique {
                        self.stamp(now + LOOKAHEAD + Time::from_ps(Q) + Time::from_ps(raw))
                    } else {
                        now + LOOKAHEAD + Time::from_ps(raw)
                    };
                    out.push((dst, t, child));
                }
            }
        }
        out
    }
}

/// The monolithic reference: every LP inside one simulation.
struct Mono {
    lps: Vec<LpState>,
}

impl World for Mono {
    type Msg = (usize, u32);

    fn deliver(&mut self, now: Time, (lp, id): (usize, u32), sched: &mut Scheduler<(usize, u32)>) {
        for (dst, t, child) in self.lps[lp].fire(now, id) {
            sched.at(t, (dst, child));
        }
    }
}

/// One LP as a shard world.
struct LpShard(LpState);

impl ShardWorld for LpShard {
    type Msg = u32;

    fn deliver(
        &mut self,
        now: Time,
        id: u32,
        sched: &mut Scheduler<u32>,
        net: &mut vf_sim::Outbox<'_, u32>,
    ) {
        let lp = self.0.lp;
        for (dst, t, child) in self.0.fire(now, id) {
            if dst == lp {
                sched.at(t, child);
            } else {
                net.send(dst, t, child);
            }
        }
    }
}

/// Seed stimulus: `(lp, raw_time, id)` with a unique sub-`CTR_BASE`
/// residue per seed index, mirrored identically into both engines.
fn seed_time(raw: u64, lp: usize, i: usize) -> Time {
    Time::from_ps((raw & !(Q - 1)) + lp as u64 * 4096 + i as u64)
}

fn build(
    n: usize,
    script: &Script,
    unique: bool,
) -> (Simulation<Mono>, ShardedSimulation<LpShard>) {
    let mono = Simulation::new(Mono {
        lps: (0..n)
            .map(|lp| LpState::new(lp, n, script.clone(), unique))
            .collect(),
    });
    let sharded = ShardedSimulation::new(
        (0..n)
            .map(|lp| LpShard(LpState::new(lp, n, script.clone(), unique)))
            .collect(),
        LOOKAHEAD,
    );
    (mono, sharded)
}

fn raw_delay() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        1u64..Q,
        Q..1_000_000,
        1_000_000u64..20_000_000,
        1_000_000_000u64..4_000_000_000,
    ]
}

fn op_strategy() -> impl Strategy<Value = SOp> {
    prop_oneof![
        raw_delay().prop_map(SOp::Local),
        Just(SOp::Burst),
        raw_delay().prop_map(SOp::Cross),
    ]
}

fn script_strategy() -> impl Strategy<Value = Script> {
    (vec(vec(op_strategy(), 0..4), 1..6), 30u32..400)
        .prop_map(|(ops, max_spawns)| Script { ops, max_spawns })
}

/// Never reached: total spawns ≤ LPs · max_spawns + seeds ≪ this.
const BUDGET: u64 = 100_000;

fn logs(sharded: &ShardedSimulation<LpShard>, n: usize) -> Vec<Vec<(Time, u32)>> {
    (0..n).map(|lp| sharded.world(lp).0.log.clone()).collect()
}

fn mono_logs(mono: &Simulation<Mono>) -> Vec<Vec<(Time, u32)>> {
    mono.world.lps.iter().map(|l| l.log.clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Full-run differential: with unique arrival times the sharded
    /// engine delivers event-for-event what the monolithic engine
    /// delivers — per-LP logs, final clock, and totals all agree.
    #[test]
    fn sharded_matches_monolithic_event_for_event(
        n in 2usize..5,
        script in script_strategy(),
        seeds in vec((raw_delay(), 0u32..1000), 1..10),
    ) {
        let (mut mono, mut sharded) = build(n, &script, true);
        for (i, &(raw, id)) in seeds.iter().enumerate() {
            let lp = id as usize % n;
            let at = seed_time(raw, lp, i);
            mono.schedule_at(at, (lp, id));
            sharded.schedule_at(lp, at, id);
        }
        let a = mono.run(Time::MAX, BUDGET);
        let b = sharded.run(Time::MAX, BUDGET);
        prop_assert_eq!(a, RunOutcome::Idle);
        prop_assert_eq!(b, RunOutcome::Idle);
        prop_assert_eq!(mono_logs(&mono), logs(&sharded, n));
        prop_assert_eq!(mono.now(), sharded.now());
        prop_assert_eq!(mono.events_delivered(), sharded.events_delivered());
        prop_assert_eq!(sharded.pending(), 0);
    }

    /// Pause/resume differential: at every horizon pause both engines
    /// have delivered exactly the events `≤ horizon`, so logs, clock,
    /// and pending counts agree at each observation point — and fresh
    /// stimulus injected past the horizon keeps them in lockstep.
    #[test]
    fn sharded_matches_monolithic_across_paused_runs(
        n in 2usize..5,
        script in script_strategy(),
        seeds in vec((raw_delay(), 0u32..1000), 1..8),
        horizons in vec(raw_delay(), 1..6),
    ) {
        let (mut mono, mut sharded) = build(n, &script, true);
        for (i, &(raw, id)) in seeds.iter().enumerate() {
            let lp = id as usize % n;
            let at = seed_time(raw, lp, i);
            mono.schedule_at(at, (lp, id));
            sharded.schedule_at(lp, at, id);
        }
        for (i, &h) in horizons.iter().enumerate() {
            // Accumulating horizons keeps each pause ahead of both
            // clocks, so run() resumes rather than no-ops.
            let horizon = Time::from_ps(
                mono.now().as_ps().max(sharded.now().as_ps()) + h,
            );
            mono.run(horizon, BUDGET);
            sharded.run(horizon, BUDGET);
            prop_assert_eq!(
                mono_logs(&mono), logs(&sharded, n),
                "diverged at pause {}", i
            );
            prop_assert_eq!(mono.now(), sharded.now());
            prop_assert_eq!(mono.pending(), sharded.pending());
            // Inject stimulus strictly past the horizon (no clamping:
            // the engines clamp against *different* local clocks, so a
            // past instant would be a seed-time divergence, not a
            // model behavior).
            let lp = i % n;
            let at = seed_time(horizon.as_ps() + Q + h, lp, seeds.len() + i);
            mono.schedule_at(at, (lp, 9_000 + i as u32));
            sharded.schedule_at(lp, at, 9_000 + i as u32);
        }
        let a = mono.run(Time::MAX, BUDGET);
        let b = sharded.run(Time::MAX, BUDGET);
        prop_assert_eq!(a, b);
        prop_assert_eq!(mono_logs(&mono), logs(&sharded, n));
        prop_assert_eq!(mono.events_delivered(), sharded.events_delivered());
    }

    /// Determinism under ties: with raw (non-unique) timestamps the
    /// sharded run is still a pure function of the model — worker
    /// thread count changes nothing, not even the window/merge counts.
    #[test]
    fn thread_count_is_invisible_even_with_ties(
        n in 2usize..5,
        script in script_strategy(),
        seeds in vec((raw_delay(), 0u32..1000), 1..8),
    ) {
        let run = |threads: usize| {
            let (_, sharded) = build(n, &script, false);
            let mut sharded = sharded.with_threads(threads);
            for (i, &(raw, id)) in seeds.iter().enumerate() {
                let lp = id as usize % n;
                sharded.schedule_at(lp, seed_time(raw, lp, i), id);
            }
            let outcome = sharded.run(Time::MAX, BUDGET);
            (outcome, logs(&sharded, n), sharded.now(), sharded.windows(), sharded.merged_events())
        };
        let base = run(1);
        for threads in [2, 4] {
            let other = run(threads);
            prop_assert_eq!(&base, &other, "{} threads diverged", threads);
        }
    }
}

/// The budget contract: sharded budgets are enforced at window
/// boundaries, so a stop can overshoot `max_events` within one window —
/// but never loses or reorders events on resume.
#[test]
fn budget_pause_resumes_without_loss() {
    let script = Script {
        ops: vec![vec![SOp::Cross(1000), SOp::Local(500)]],
        max_spawns: 200,
    };
    let (mut mono, mut sharded) = build(3, &script, true);
    for (i, id) in [(0usize, 1u32), (1, 2), (2, 3)] {
        let at = seed_time(5_000_000, i, id as usize);
        mono.schedule_at(at, (i, id));
        sharded.schedule_at(i, at, id);
    }
    mono.run(Time::MAX, u64::MAX / 2);
    // Drip-feed the sharded run through tiny budgets.
    while sharded.run(Time::MAX, 7) != RunOutcome::Idle {}
    assert_eq!(mono_logs(&mono), logs(&sharded, 3));
    assert_eq!(mono.events_delivered(), sharded.events_delivered());
}
