//! # vf-sim — discrete-event simulation kernel
//!
//! The foundation layer of the VirtIO host-FPGA reproduction testbed:
//!
//! * [`time`] — the global picosecond time base shared by the host clock
//!   (1 ns resolution) and the FPGA fabric clock (8 ns @ 125 MHz);
//! * [`engine`] — a deterministic discrete-event loop generic over a
//!   world-defined message type;
//! * [`wheel`] — the hierarchical timing-wheel queue behind the engine
//!   (slab-allocated, allocation-free in steady state, with a sorted
//!   overflow level for far-future events);
//! * [`baseline`] — the pre-wheel binary-heap engine, preserved as the
//!   differential-testing reference and bench baseline;
//! * [`rng`] — seeded, stream-splittable randomness so every run is a pure
//!   function of `(seed, configuration)`;
//! * [`noise`] — the host-OS residual-noise model (per-step lognormal
//!   jitter + rare Pareto spikes) that produces the paper's latency
//!   variance and tails;
//! * [`stats`] — exact-percentile sample sets, streaming moments, and
//!   histograms matching the paper's reporting (mean ± σ, p95/p99/p99.9);
//! * [`sweep`] — order-preserving parallel parameter sweeps;
//! * [`shard`] — conservative parallel sharding of one simulation across
//!   worker threads with a deterministic timestamp-ordered merge (E25).
//!
//! Nothing in this crate knows about PCIe, VirtIO, or FPGAs; those models
//! live in the crates layered above (see DESIGN.md §2).
//!
//! ```
//! use vf_sim::{Scheduler, Simulation, Time, World};
//!
//! // A world that relays a token three times, 5 µs apart.
//! struct Relay(Vec<Time>);
//! impl World for Relay {
//!     type Msg = u8;
//!     fn deliver(&mut self, now: Time, hops: u8, sched: &mut Scheduler<u8>) {
//!         self.0.push(now);
//!         if hops > 0 {
//!             sched.after(Time::from_us(5), hops - 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Relay(Vec::new()));
//! sim.schedule(Time::from_us(1), 2);
//! sim.run_to_idle();
//! assert_eq!(
//!     sim.world.0,
//!     vec![Time::from_us(1), Time::from_us(6), Time::from_us(11)]
//! );
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod engine;
pub mod noise;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod sweep;
pub mod time;
pub mod wheel;

pub use engine::{RunOutcome, Scheduler, Simulation, World};
pub use noise::{Jitter, NoiseModel, SpikeClass};
pub use rng::SimRng;
pub use shard::{run_partitioned, Coupled, Outbox, ShardWorld, ShardableWorld, ShardedSimulation};
pub use stats::{Histogram, SampleSet, Summary, Welford};
pub use sweep::{default_threads, parallel_map, MAX_THREADS};
pub use time::{Time, FPGA_CYCLE};
pub use wheel::TimingWheel;
