//! Hierarchical timing-wheel event queue — the engine's hot core.
//!
//! The [`Simulation`](crate::engine::Simulation) event loop used to sit on a
//! `BinaryHeap<Reverse<Scheduled>>`: every insert and pop paid `O(log n)`
//! sift work plus the cache misses of a heap laid out by age, and the E19–E21
//! sweeps (16 queue pairs, 64 tenants, out-of-order depth scans) spend most
//! of their wall clock in exactly those two operations. [`TimingWheel`]
//! replaces it with the classic hashed hierarchical wheel:
//!
//! * **Geometry** — [`LEVELS`] levels of [`SLOTS`] slots each, 6 bits per
//!   level at the native 1 ps tick of [`Time`]. Level *l* slots are
//!   `64^l` ps wide, so the wheel spans `2^36` ps ≈ 68.7 simulated seconds
//!   beyond the current epoch — far past the longest sweep in the repro.
//!   Events beyond the horizon wait in a **sorted overflow level** (a binary
//!   heap ordered by `(time, seq)`) and are promoted into the wheel when the
//!   epoch's top-level window rolls onto them.
//! * **Slab allocation** — queue nodes live in one growable slab recycled
//!   through an intrusive freelist; steady-state scheduling allocates
//!   nothing. Slot chains are intrusive singly-linked lists through the
//!   slab, so cascading a slot is pointer surgery, not memmove.
//! * **Exact FIFO tie-break** — every insert is stamped with a monotonic
//!   sequence number. A level-0 slot is one tick wide, so all its entries
//!   share one expiry; the batch is sorted by sequence before delivery,
//!   which reproduces the heap's `(time, seq)` order bit-for-bit. The
//!   determinism goldens in `tests/determinism.rs` pin this equivalence.
//!
//! ## Epoch discipline
//!
//! `epoch` is the timestamp of the most recently popped batch; the wheel
//! holds only events strictly after it, the `ready` queue holds the
//! still-undelivered remainder of the batch *at* it. The engine clamps every
//! insert to its own `now == epoch`, so slots never have to represent the
//! past. Crucially, [`next_at`](TimingWheel::next_at) peeks without moving
//! the epoch (it scans the earliest occupied slot instead of cascading), so
//! a horizon check in `Simulation::run` cannot invalidate later inserts.
//!
//! ## Why "lowest occupied level" finds the earliest event
//!
//! The invariant maintained by insert and cascade is that an entry stored at
//! level *l* agrees with the epoch on every 6-bit digit above *l*. Occupied
//! slots at level *l* therefore lie strictly between the end of the level
//! *l−1* window and the end of the level *l* window: the per-level ranges
//! are disjoint and ordered by level. Scanning levels bottom-up and taking
//! the first occupied slot (lowest set bit of the occupancy word) yields the
//! slot containing the global minimum; for levels ≥ 1 the slot is walked
//! once to find the exact minimum expiry, the epoch jumps there, and the
//! rest of the slot cascades into lower levels relative to the new epoch.
//! Each event cascades at most once per level over its lifetime, so the
//! amortized cost per event is `O(LEVELS)` with no comparisons against
//! unrelated events — the property that makes million-RTT sweeps cheap.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::Time;

/// Bits of slot index per level (64 slots).
const SLOT_BITS: u32 = 6;
/// Slots per level.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels; beyond them the sorted overflow level takes over.
pub const LEVELS: usize = 6;
/// Total bits the in-wheel horizon spans: 2^36 ps ≈ 68.7 s.
const WHEEL_BITS: u32 = SLOT_BITS * LEVELS as u32;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Null link in the intrusive slot chains / freelist.
const NIL: u32 = u32::MAX;

/// One slab entry: an event node threaded into a slot chain (or, when
/// `msg` is `None`, into the freelist).
struct Node<M> {
    at: u64,
    seq: u64,
    next: u32,
    msg: Option<M>,
}

/// One wheel level: a 64-bit occupancy word plus the chain head per slot.
#[derive(Clone, Copy)]
struct Level {
    occupied: u64,
    slots: [u32; SLOTS],
}

impl Level {
    const EMPTY: Level = Level {
        occupied: 0,
        slots: [NIL; SLOTS],
    };
}

/// Far-future event parked in the sorted overflow level. Ordered by
/// `(at, seq)` so the heap pops in exact delivery order.
struct Overflow<M> {
    at: u64,
    seq: u64,
    msg: M,
}

impl<M> PartialEq for Overflow<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Overflow<M> {}
impl<M> PartialOrd for Overflow<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Overflow<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A hierarchical timing wheel holding `(Time, M)` events in exact
/// `(time, insertion-sequence)` order.
///
/// The queue behind [`Simulation`](crate::engine::Simulation); exposed so
/// differential tests and benches can drive it directly. Inserts must never
/// predate the timestamp of the last popped event (the engine guarantees
/// this by clamping to `now`); this is debug-asserted.
pub struct TimingWheel<M> {
    levels: [Level; LEVELS],
    slab: Vec<Node<M>>,
    /// Freelist head into `slab`.
    free: u32,
    /// Sorted overflow level for events beyond the wheel horizon.
    overflow: BinaryHeap<Reverse<Overflow<M>>>,
    /// The undelivered remainder of the current batch, all at `epoch`,
    /// in sequence order.
    ready: VecDeque<(u64, M)>,
    /// Timestamp of the current/most recent batch; wheel contents are
    /// strictly after it.
    epoch: u64,
    /// Next insertion sequence number (the FIFO tie-break stamp).
    seq: u64,
    len: usize,
    /// Cached earliest wheel/overflow expiry (not counting `ready`);
    /// invalidated when a batch is popped, tightened by inserts.
    next_cache: Option<Time>,
    /// Live freelist length; with `len` and `slab.len()` this makes node
    /// leaks observable (`vf-metrics` gauges, and the leak-canary test).
    free_len: usize,
    /// Total nodes re-filed to a lower level by batch cascades — the
    /// wheel's amortized-cost knob, exported as a metrics counter.
    cascades: u64,
}

impl<M> TimingWheel<M> {
    /// An empty wheel with its epoch at time zero.
    pub fn new() -> Self {
        TimingWheel {
            levels: [Level::EMPTY; LEVELS],
            slab: Vec::new(),
            free: NIL,
            overflow: BinaryHeap::new(),
            ready: VecDeque::new(),
            epoch: 0,
            seq: 0,
            len: 0,
            next_cache: None,
            free_len: 0,
            cascades: 0,
        }
    }

    /// Number of pending events (ready batch + wheel + overflow).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Nodes ever allocated in the slab (live + freelisted). Grows to
    /// the peak concurrent event count and never shrinks.
    #[inline]
    pub fn slab_len(&self) -> usize {
        self.slab.len()
    }

    /// Slab nodes currently on the freelist. After a drained run this
    /// must equal [`slab_len`](Self::slab_len): any gap is a leaked
    /// node (the PR 7 intrusive-freelist hazard the metrics leak
    /// canary watches for).
    #[inline]
    pub fn freelist_len(&self) -> usize {
        self.free_len
    }

    /// Events parked in the sorted overflow level.
    #[inline]
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Total nodes re-filed into a lower level by batch cascades since
    /// construction.
    #[inline]
    pub fn cascades(&self) -> u64 {
        self.cascades
    }

    /// Insert an event at absolute instant `at` (must be `>=` the last
    /// popped timestamp). Later inserts at equal instants deliver later:
    /// each insert is stamped with the next sequence number.
    pub fn insert(&mut self, at: Time, msg: M) {
        let seq = self.seq;
        self.seq += 1;
        let at = at.as_ps();
        debug_assert!(
            at >= self.epoch,
            "insert into the past: {at} < {}",
            self.epoch
        );
        self.len += 1;
        let xor = at ^ self.epoch;
        if xor == 0 {
            // Joins the batch at the current instant; `seq` is monotonic so
            // appending preserves sequence order.
            self.ready.push_back((seq, msg));
        } else {
            if let Some(c) = self.next_cache {
                if at < c.as_ps() {
                    self.next_cache = Some(Time::from_ps(at));
                }
            }
            if xor >> WHEEL_BITS != 0 {
                self.overflow.push(Reverse(Overflow { at, seq, msg }));
            } else {
                let node = self.alloc(at, seq, msg);
                self.file(node, at);
            }
        }
    }

    /// Exact timestamp of the next event to pop, without delivering or
    /// advancing the epoch. `None` when empty.
    pub fn next_at(&mut self) -> Option<Time> {
        if !self.ready.is_empty() {
            return Some(Time::from_ps(self.epoch));
        }
        if self.len == 0 {
            return None;
        }
        if let Some(c) = self.next_cache {
            return Some(c);
        }
        let at = match self.lowest_slot() {
            Some((0, idx)) => (self.epoch & !SLOT_MASK) | idx as u64,
            Some((level, idx)) => self.slot_min(level, idx),
            None => {
                let Reverse(head) = self.overflow.peek().expect("len > 0 with empty queue");
                head.at
            }
        };
        let at = Time::from_ps(at);
        self.next_cache = Some(at);
        Some(at)
    }

    /// Conservative inclusive window `[lo, hi]` containing the next
    /// event's timestamp, computed with O(levels) bit scans and **no**
    /// slot-chain walk. Exact (`lo == hi`) when the next event sits in the
    /// ready batch, a level-0 slot, or the overflow heap; for a level-`l`
    /// slot the window is the slot's 2^(6·l)-tick span. `None` when empty.
    ///
    /// This is the cheap peek behind
    /// [`Simulation::run`](crate::engine::Simulation::run)'s horizon check:
    /// `lo > horizon` proves the next event lies beyond the horizon and
    /// `hi <= horizon` proves it does not, so the exact (chain-walking)
    /// [`next_at`](Self::next_at) is only needed when the horizon falls
    /// inside the window.
    pub fn next_window(&self) -> Option<(Time, Time)> {
        if !self.ready.is_empty() {
            let t = Time::from_ps(self.epoch);
            return Some((t, t));
        }
        if self.len == 0 {
            return None;
        }
        if let Some(c) = self.next_cache {
            return Some((c, c));
        }
        let (lo, hi) = match self.lowest_slot() {
            Some((level, idx)) => {
                let shift = level as u32 * SLOT_BITS;
                let span = 1u64 << shift;
                let base = (self.epoch & !(span * SLOTS as u64 - 1)) | ((idx as u64) << shift);
                (base, base + (span - 1))
            }
            None => {
                let Reverse(head) = self.overflow.peek().expect("len > 0 with empty queue");
                (head.at, head.at)
            }
        };
        Some((Time::from_ps(lo), Time::from_ps(hi)))
    }

    /// Pop the earliest event in `(time, sequence)` order.
    pub fn pop(&mut self) -> Option<(Time, M)> {
        if self.ready.is_empty() {
            self.pop_batch();
            self.next_cache = None;
        }
        let (_seq, msg) = self.ready.pop_front()?;
        self.len -= 1;
        Some((Time::from_ps(self.epoch), msg))
    }

    /// Move the earliest batch (all events at one instant) into `ready`,
    /// advancing the epoch to that instant.
    fn pop_batch(&mut self) {
        debug_assert!(self.ready.is_empty());
        if let Some((level, idx)) = self.lowest_slot() {
            let head = self.take_slot(level, idx);
            if level == 0 {
                // One-tick slot: every entry shares the same expiry.
                self.epoch = (self.epoch & !SLOT_MASK) | idx as u64;
                let mut n = head;
                while n != NIL {
                    let next = self.slab[n as usize].next;
                    let seq = self.slab[n as usize].seq;
                    let msg = self.recycle(n);
                    self.ready.push_back((seq, msg));
                    n = next;
                }
            } else {
                // Cascade: jump the epoch to the slot's earliest expiry,
                // deliver those entries, re-file the rest at lower levels
                // relative to the new epoch.
                let mut t_min = u64::MAX;
                let mut n = head;
                while n != NIL {
                    t_min = t_min.min(self.slab[n as usize].at);
                    n = self.slab[n as usize].next;
                }
                self.epoch = t_min;
                let mut n = head;
                while n != NIL {
                    let next = self.slab[n as usize].next;
                    let at = self.slab[n as usize].at;
                    if at == t_min {
                        let seq = self.slab[n as usize].seq;
                        let msg = self.recycle(n);
                        self.ready.push_back((seq, msg));
                    } else {
                        self.cascades += 1;
                        self.file(n, at);
                    }
                    n = next;
                }
            }
            // Slot chains are in insertion-stack order; restore FIFO.
            self.ready
                .make_contiguous()
                .sort_unstable_by_key(|&(seq, _)| seq);
            return;
        }
        // Wheel empty: the overflow level holds the horizon. Jump the epoch
        // there, take the equal-time batch (heap order is already
        // sequence-sorted within one instant), then promote everything that
        // now fits inside the rolled-over wheel windows.
        let Some(Reverse(head)) = self.overflow.pop() else {
            return;
        };
        self.epoch = head.at;
        self.ready.push_back((head.seq, head.msg));
        while self
            .overflow
            .peek()
            .is_some_and(|Reverse(e)| e.at == self.epoch)
        {
            let Reverse(e) = self.overflow.pop().expect("peeked entry");
            self.ready.push_back((e.seq, e.msg));
        }
        while self
            .overflow
            .peek()
            .is_some_and(|Reverse(e)| (e.at ^ self.epoch) >> WHEEL_BITS == 0)
        {
            let Reverse(e) = self.overflow.pop().expect("peeked entry");
            let node = self.alloc(e.at, e.seq, e.msg);
            self.file(node, e.at);
        }
    }

    /// Lowest occupied `(level, slot)`; by the level-window invariant this
    /// slot contains the earliest pending wheel event.
    #[inline]
    fn lowest_slot(&self) -> Option<(usize, usize)> {
        self.levels
            .iter()
            .position(|l| l.occupied != 0)
            .map(|level| (level, self.levels[level].occupied.trailing_zeros() as usize))
    }

    /// Minimum expiry in a (non-empty) slot at `level >= 1`.
    fn slot_min(&self, level: usize, idx: usize) -> u64 {
        let mut t_min = u64::MAX;
        let mut n = self.levels[level].slots[idx];
        debug_assert!(n != NIL);
        while n != NIL {
            t_min = t_min.min(self.slab[n as usize].at);
            n = self.slab[n as usize].next;
        }
        t_min
    }

    /// Detach and return a slot's chain head, clearing its occupancy bit.
    #[inline]
    fn take_slot(&mut self, level: usize, idx: usize) -> u32 {
        let head = self.levels[level].slots[idx];
        self.levels[level].slots[idx] = NIL;
        self.levels[level].occupied &= !(1u64 << idx);
        head
    }

    /// Link an allocated node into the slot its expiry selects under the
    /// current epoch.
    #[inline]
    fn file(&mut self, node: u32, at: u64) {
        let xor = at ^ self.epoch;
        debug_assert!(xor != 0 && xor >> WHEEL_BITS == 0);
        let level = ((63 - xor.leading_zeros()) / SLOT_BITS) as usize;
        let idx = ((at >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        self.slab[node as usize].next = self.levels[level].slots[idx];
        self.levels[level].slots[idx] = node;
        self.levels[level].occupied |= 1u64 << idx;
    }

    /// Take a node from the freelist or grow the slab.
    fn alloc(&mut self, at: u64, seq: u64, msg: M) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let node = &mut self.slab[idx as usize];
            debug_assert!(node.msg.is_none());
            self.free = node.next;
            self.free_len -= 1;
            node.at = at;
            node.seq = seq;
            node.next = NIL;
            node.msg = Some(msg);
            idx
        } else {
            let idx = u32::try_from(self.slab.len()).expect("slab exceeds u32 indices");
            assert!(idx != NIL, "timing wheel slab full");
            self.slab.push(Node {
                at,
                seq,
                next: NIL,
                msg: Some(msg),
            });
            idx
        }
    }

    /// Take a node's message and return the node to the freelist.
    fn recycle(&mut self, idx: u32) -> M {
        let node = &mut self.slab[idx as usize];
        let msg = node.msg.take().expect("recycling an empty node");
        node.next = self.free;
        self.free = idx;
        self.free_len += 1;
        msg
    }
}

impl<M> Default for TimingWheel<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimingWheel<u32>) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some((at, msg)) = wheel.pop() {
            out.push((at.as_ps(), msg));
        }
        out
    }

    #[test]
    fn orders_by_time_then_sequence() {
        let mut w = TimingWheel::new();
        w.insert(Time::from_ns(30), 3);
        w.insert(Time::from_ns(10), 1);
        w.insert(Time::from_ns(10), 2);
        w.insert(Time::from_ns(20), 4);
        assert_eq!(w.next_at(), Some(Time::from_ns(10)));
        assert_eq!(
            drain(&mut w),
            vec![(10_000, 1), (10_000, 2), (20_000, 4), (30_000, 3)]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn same_instant_burst_is_fifo_across_levels() {
        // Events at one instant inserted while the epoch is far away land
        // at a high level and cascade; later inserts at the same instant
        // (after the epoch moved close) land at level 0. Delivery must
        // still be pure insertion order.
        let mut w = TimingWheel::new();
        let t = Time::from_us(5);
        w.insert(t, 0); // epoch 0 → level 2-ish
        w.insert(Time::from_us(5) - Time::from_ns(1), 99);
        let (at, msg) = w.pop().unwrap();
        assert_eq!((at, msg), (Time::from_us(5) - Time::from_ns(1), 99));
        w.insert(t, 1); // epoch now 1 ns short of t → low level
        w.insert(t, 2);
        assert_eq!(
            drain(&mut w),
            vec![(t.as_ps(), 0), (t.as_ps(), 1), (t.as_ps(), 2)]
        );
    }

    #[test]
    fn far_future_goes_to_overflow_and_promotes() {
        let mut w = TimingWheel::new();
        // ~100 s and ~200 s: both beyond the 68.7 s wheel horizon.
        w.insert(Time::from_secs(100), 1);
        w.insert(Time::from_secs(100), 2);
        w.insert(Time::from_secs(200), 3);
        // +50 s from the 100 s epoch fits the wheel after promotion.
        w.insert(Time::from_secs(150), 4);
        assert_eq!(w.len(), 4);
        assert_eq!(w.next_at(), Some(Time::from_secs(100)));
        assert_eq!(w.pop(), Some((Time::from_secs(100), 1)));
        assert_eq!(w.pop(), Some((Time::from_secs(100), 2)));
        // 150 s was promoted out of overflow when the epoch rolled to 100 s.
        assert_eq!(w.next_at(), Some(Time::from_secs(150)));
        assert_eq!(w.pop(), Some((Time::from_secs(150), 4)));
        assert_eq!(w.pop(), Some((Time::from_secs(200), 3)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn time_max_is_representable() {
        let mut w = TimingWheel::new();
        w.insert(Time::from_ns(1), 0);
        w.insert(Time::MAX, 1);
        assert_eq!(w.pop(), Some((Time::from_ns(1), 0)));
        assert_eq!(w.next_at(), Some(Time::MAX));
        assert_eq!(w.pop(), Some((Time::MAX, 1)));
        // After delivering at the end of time, same-instant inserts still work.
        w.insert(Time::MAX, 2);
        assert_eq!(w.pop(), Some((Time::MAX, 2)));
        assert!(w.is_empty());
    }

    #[test]
    fn len_is_exact_across_cascades() {
        let mut w = TimingWheel::new();
        let mut expected = 0usize;
        for i in 0..500u32 {
            // Spread across all levels and the overflow.
            let at = Time::from_ps((i as u64 * i as u64) % (1 << 40));
            w.insert(at, i);
            expected += 1;
            assert_eq!(w.len(), expected);
        }
        // Interleave pops (which cascade) with membership checks.
        while let Some(at) = w.next_at() {
            let (popped_at, _) = w.pop().unwrap();
            assert_eq!(popped_at, at, "peek disagreed with pop");
            expected -= 1;
            assert_eq!(w.len(), expected);
        }
        assert_eq!(expected, 0);
    }

    #[test]
    fn slab_recycles_nodes() {
        let mut w = TimingWheel::new();
        for round in 0..10u64 {
            for i in 0..100u64 {
                w.insert(Time::from_ns(round * 1000 + i), i as u32);
            }
            while w.pop().is_some() {}
        }
        // Freelist recycling: the slab never grows past one round's worth.
        assert!(
            w.slab.len() <= 100,
            "slab grew to {} nodes for 100 live events",
            w.slab.len()
        );
    }

    /// Leak canary for the intrusive freelist: after a drained run every
    /// slab node must be back on the freelist and the overflow level
    /// empty, whatever mix of levels, cascades, and overflow promotions
    /// the events went through. A node that misses `recycle` would show
    /// up here as `freelist_len < slab_len` long before it exhausts the
    /// slab.
    #[test]
    fn occupancy_returns_to_zero_after_drain() {
        let mut w = TimingWheel::new();
        for round in 0..3u64 {
            for i in 0..300u64 {
                // Spread across level 0, mid levels, and the overflow;
                // each round starts past the previous round's horizon so
                // no insert lands behind the advanced epoch.
                let at = round * (1 << 40) + (i * i * 7919) % (1 << 40);
                w.insert(Time::from_ps(at), i as u32);
            }
            // Partial interleaved drain to force cascading mid-stream.
            for _ in 0..150 {
                w.pop();
            }
            while w.pop().is_some() {}
            assert_eq!(w.len(), 0);
            assert_eq!(
                w.freelist_len(),
                w.slab_len(),
                "round {round}: slab nodes leaked"
            );
            assert_eq!(w.overflow_len(), 0, "round {round}: overflow leaked");
        }
        // The cascade counter saw the mid-level traffic.
        assert!(w.cascades() > 0, "no cascades in a multi-level workload");
    }

    #[test]
    fn peek_does_not_advance_epoch() {
        let mut w = TimingWheel::new();
        w.insert(Time::from_us(7), 1);
        assert_eq!(w.next_at(), Some(Time::from_us(7)));
        // A later insert *earlier* than the peeked event must still win:
        // peeking must not have rolled the epoch forward.
        w.insert(Time::from_us(3), 2);
        assert_eq!(w.next_at(), Some(Time::from_us(3)));
        assert_eq!(w.pop(), Some((Time::from_us(3), 2)));
        assert_eq!(w.pop(), Some((Time::from_us(7), 1)));
    }

    /// `next_window` must always bracket the exact `next_at`, be exact for
    /// ready/level-0/overflow events, and never mutate the wheel.
    #[test]
    fn next_window_brackets_exact_peek() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        assert_eq!(w.next_window(), None);

        // Level-0 event (within 64 ticks of the epoch): window is exact.
        w.insert(Time::from_ps(5), 0);
        assert_eq!(w.next_window(), Some((Time::from_ps(5), Time::from_ps(5))));

        // A higher-level event alone: window is the slot span and must
        // contain the exact minimum.
        let mut w: TimingWheel<u32> = TimingWheel::new();
        w.insert(Time::from_us(7), 1);
        let (lo, hi) = w.next_window().unwrap();
        assert!(lo <= Time::from_us(7) && Time::from_us(7) <= hi);
        assert!(hi.as_ps() - lo.as_ps() < 1 << (SLOT_BITS * LEVELS as u32));
        // The exact peek caches; afterwards the window collapses to it.
        assert_eq!(w.next_at(), Some(Time::from_us(7)));
        assert_eq!(w.next_window(), Some((Time::from_us(7), Time::from_us(7))));

        // Overflow-only (beyond the in-wheel horizon): exact again.
        let mut w: TimingWheel<u32> = TimingWheel::new();
        w.insert(Time::from_secs(100), 2);
        assert_eq!(
            w.next_window(),
            Some((Time::from_secs(100), Time::from_secs(100)))
        );

        // Ready batch at the epoch: exact, and unaffected by later events.
        let mut w: TimingWheel<u32> = TimingWheel::new();
        w.insert(Time::ZERO, 3);
        w.insert(Time::from_ms(1), 4);
        assert_eq!(w.next_window(), Some((Time::ZERO, Time::ZERO)));
        assert_eq!(w.pop(), Some((Time::ZERO, 3)));
        let (lo, hi) = w.next_window().unwrap();
        assert!(lo <= Time::from_ms(1) && Time::from_ms(1) <= hi);
    }
}
