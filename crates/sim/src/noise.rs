//! Host OS residual-noise model.
//!
//! The paper runs its experiments on an otherwise-idle Fedora 37 host
//! ("we have ensured that no other applications, except the test
//! application, are running"), yet its latency distributions still show
//! substantial software-side variance and heavy tails (Figs. 3–5, Table I).
//! That residual variance comes from the kernel itself: timer ticks, RCU and
//! kworker activity, scheduler wake-up placement, cache/TLB state, and
//! occasional long stalls (SMIs, page faults on first touch).
//!
//! This module models that noise with two mechanisms, applied only to
//! **software** steps (the paper's hardware counters show minimal hardware
//! variance, which the simulated fabric reproduces by construction):
//!
//! 1. **Per-step jitter** — every software step costs
//!    `base + lognormal(jitter_median, jitter_sigma) · scale`. Lognormal
//!    additive jitter matches the right-skewed per-syscall cost
//!    distributions observed in practice; because every software step pays
//!    it, a driver design with more software steps accumulates more
//!    variance — the paper's explanation for XDMA's wider distribution.
//! 2. **Spike processes** — each *interruptible* software interval (a
//!    blocking wait, an interrupt-to-wakeup path) may absorb a noise spike.
//!    Two classes are modeled: frequent small spikes (timer tick / softirq
//!    interference, a few µs) that shape the 95–99th percentiles, and rare
//!    large spikes (tens of µs, Pareto-tailed) that dominate the 99.9th
//!    percentile for *both* drivers — which is why Table I's advantage
//!    fades at 99.9%.
//!
//! The concrete constants live in the calibration profile of the `virtio-fpga`
//! crate; this module only defines the mechanisms.

use crate::rng::SimRng;
use crate::time::Time;

/// Additive lognormal jitter: `median · exp(sigma · N(0,1))`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Jitter {
    /// Median of the additive term.
    pub median: Time,
    /// Log-space standard deviation (dimensionless). 0 disables spread.
    pub sigma: f64,
}

impl Jitter {
    /// A fixed (deterministic) additive term.
    pub const fn fixed(t: Time) -> Self {
        Jitter {
            median: t,
            sigma: 0.0,
        }
    }

    /// Draw one jitter value.
    pub fn sample(&self, rng: &mut SimRng) -> Time {
        if self.median == Time::ZERO {
            return Time::ZERO;
        }
        if self.sigma == 0.0 {
            return self.median;
        }
        Time::from_ns_f64(rng.lognormal_median(self.median.as_ns_f64(), self.sigma))
    }
}

/// One class of noise spikes hitting interruptible software intervals.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpikeClass {
    /// Probability that a given interruptible interval absorbs a spike of
    /// this class.
    pub prob: f64,
    /// Minimum spike magnitude (Pareto scale).
    pub min: Time,
    /// Pareto shape; larger = lighter tail. Values in 2–4 keep the tail
    /// heavy but with finite variance.
    pub alpha: f64,
    /// Hard cap on a single spike, modeling watchdog/preemption limits.
    pub cap: Time,
}

impl SpikeClass {
    /// Draw the spike contribution of this class for one interval.
    pub fn sample(&self, rng: &mut SimRng) -> Time {
        if !rng.chance(self.prob) {
            return Time::ZERO;
        }
        let raw = rng.pareto(self.min.as_ns_f64(), self.alpha);
        Time::from_ns_f64(raw).min(self.cap)
    }
}

/// The complete host-noise model applied by the software cost model.
#[derive(Clone, Debug, PartialEq)]
pub struct NoiseModel {
    /// Global scale factor on all noise (1.0 = calibrated; 0.0 = noiseless
    /// host, used by unit tests and the E11 noise-sensitivity sweep).
    pub scale: f64,
    /// Per-software-step jitter.
    pub step_jitter: Jitter,
    /// Spike classes applied to interruptible intervals.
    pub spikes: Vec<SpikeClass>,
}

impl NoiseModel {
    /// A completely noiseless model: every step costs exactly its base.
    pub fn noiseless() -> Self {
        NoiseModel {
            scale: 0.0,
            step_jitter: Jitter::fixed(Time::ZERO),
            spikes: Vec::new(),
        }
    }

    /// Return a copy with all noise scaled by `factor` (composes with the
    /// existing scale).
    pub fn scaled(&self, factor: f64) -> Self {
        NoiseModel {
            scale: self.scale * factor,
            ..self.clone()
        }
    }

    /// Cost of one software step with base cost `base`.
    pub fn sw_step(&self, rng: &mut SimRng, base: Time) -> Time {
        if self.scale == 0.0 {
            return base;
        }
        base + self.step_jitter.sample(rng).scale(self.scale)
    }

    /// Extra delay absorbed by one interruptible interval (blocking wait,
    /// IRQ-to-wakeup path). Zero most of the time.
    pub fn interruptible_extra(&self, rng: &mut SimRng) -> Time {
        if self.scale == 0.0 {
            return Time::ZERO;
        }
        let mut total = Time::ZERO;
        for class in &self.spikes {
            total += class.sample(rng).scale(self.scale);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_model() -> NoiseModel {
        NoiseModel {
            scale: 1.0,
            step_jitter: Jitter {
                median: Time::from_ns(300),
                sigma: 0.7,
            },
            spikes: vec![
                SpikeClass {
                    prob: 0.02,
                    min: Time::from_us(3),
                    alpha: 3.0,
                    cap: Time::from_us(20),
                },
                SpikeClass {
                    prob: 0.001,
                    min: Time::from_us(30),
                    alpha: 2.5,
                    cap: Time::from_us(200),
                },
            ],
        }
    }

    #[test]
    fn noiseless_is_exact() {
        let m = NoiseModel::noiseless();
        let mut rng = SimRng::new(1);
        let base = Time::from_us(2);
        for _ in 0..100 {
            assert_eq!(m.sw_step(&mut rng, base), base);
            assert_eq!(m.interruptible_extra(&mut rng), Time::ZERO);
        }
    }

    #[test]
    fn sw_step_is_at_least_base() {
        let m = test_model();
        let mut rng = SimRng::new(2);
        let base = Time::from_us(1);
        for _ in 0..10_000 {
            assert!(m.sw_step(&mut rng, base) >= base);
        }
    }

    #[test]
    fn step_jitter_median_near_parameter() {
        let m = test_model();
        let mut rng = SimRng::new(3);
        let n = 50_001;
        let mut extras: Vec<u64> = (0..n)
            .map(|_| (m.sw_step(&mut rng, Time::ZERO)).as_ps())
            .collect();
        extras.sort_unstable();
        let median_ns = extras[n / 2] as f64 / 1e3;
        assert!(
            (median_ns - 300.0).abs() < 15.0,
            "median extra = {median_ns} ns"
        );
    }

    #[test]
    fn spikes_are_rare_but_present() {
        let m = test_model();
        let mut rng = SimRng::new(4);
        let n = 200_000;
        let hits = (0..n)
            .filter(|_| m.interruptible_extra(&mut rng) > Time::ZERO)
            .count();
        let rate = hits as f64 / n as f64;
        // Expected ~2.1% (0.02 + 0.001).
        assert!((0.015..0.03).contains(&rate), "spike rate = {rate}");
    }

    #[test]
    fn spike_cap_is_enforced() {
        let class = SpikeClass {
            prob: 1.0,
            min: Time::from_us(30),
            alpha: 0.5, // extremely heavy tail
            cap: Time::from_us(100),
        };
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            let s = class.sample(&mut rng);
            assert!(s >= Time::from_us(30) && s <= Time::from_us(100));
        }
    }

    #[test]
    fn scaled_composes() {
        let m = test_model().scaled(2.0).scaled(0.0);
        assert_eq!(m.scale, 0.0);
        let mut rng = SimRng::new(6);
        assert_eq!(m.sw_step(&mut rng, Time::from_ns(5)), Time::from_ns(5));
    }

    #[test]
    fn more_steps_mean_more_variance() {
        // The core mechanism behind the paper's variance argument: a path
        // with 2x the software steps must show a wider total distribution.
        let m = test_model();
        let mut rng = SimRng::new(7);
        let base = Time::from_us(2);
        let total_with_steps = |steps: usize, rng: &mut SimRng| -> Vec<f64> {
            (0..20_000)
                .map(|_| {
                    (0..steps)
                        .map(|_| m.sw_step(rng, base).as_ns_f64())
                        .sum::<f64>()
                })
                .collect()
        };
        let few = total_with_steps(4, &mut rng);
        let many = total_with_steps(8, &mut rng);
        let var = |v: &[f64]| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64
        };
        assert!(
            var(&many) > 1.5 * var(&few),
            "var(many)={} var(few)={}",
            var(&many),
            var(&few)
        );
    }
}
