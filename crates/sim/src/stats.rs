//! Latency statistics.
//!
//! The paper reports average round-trip latency with standard-deviation
//! error bars (Figs. 4–5), full latency distributions (Fig. 3), and exact
//! tail percentiles at 95/99/99.9% over 50 000 samples per configuration
//! (Table I). This module provides the corresponding tooling:
//!
//! * [`SampleSet`] — stores every sample (50 000 × 8 bytes per
//!   configuration is trivial) so percentiles are **exact**, like the
//!   paper's, not sketch approximations;
//! * [`Summary`] — the five-number summary plus mean/std/p95/p99/p999 that
//!   every experiment row is built from;
//! * [`Welford`] — streaming mean/variance for hardware counters that run
//!   for millions of events;
//! * [`Histogram`] — fixed-bin histogram for rendering Fig. 3-style
//!   distribution plots in text.

use serde::{Deserialize, Serialize};

use crate::time::Time;

/// A collection of latency samples (stored in microseconds, the paper's
/// reporting unit).
#[derive(Clone, Debug, Default)]
pub struct SampleSet {
    samples: Vec<f64>,
    /// Sorted copy of `samples`, rebuilt lazily for percentile queries.
    /// `samples` itself always stays in insertion order so [`Self::raw`]
    /// can return the time series.
    sorted: Vec<f64>,
    sorted_valid: bool,
}

impl SampleSet {
    /// Empty set with capacity for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        SampleSet {
            samples: Vec::with_capacity(n),
            sorted: Vec::new(),
            sorted_valid: true,
        }
    }

    /// Build directly from microsecond values.
    pub fn from_us(values: Vec<f64>) -> Self {
        SampleSet {
            samples: values,
            sorted: Vec::new(),
            sorted_valid: false,
        }
    }

    /// Record one latency sample.
    pub fn push(&mut self, t: Time) {
        self.samples.push(t.as_us_f64());
        self.sorted_valid = false;
    }

    /// Record one sample already in microseconds.
    pub fn push_us(&mut self, us: f64) {
        debug_assert!(us.is_finite() && us >= 0.0);
        self.samples.push(us);
        self.sorted_valid = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples, always in insertion order — percentile queries
    /// sort a private copy, never the series itself.
    pub fn raw(&self) -> &[f64] {
        &self.samples
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted_valid {
            self.sorted.clear();
            self.sorted.extend_from_slice(&self.samples);
            self.sorted
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN latency sample"));
            self.sorted_valid = true;
        }
    }

    /// Exact percentile `p` in `[0, 100]` using the nearest-rank method
    /// (the conventional definition for reported tail latencies).
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!(!self.samples.is_empty(), "percentile of empty sample set");
        assert!((0.0..=100.0).contains(&p));
        self.ensure_sorted();
        if p == 0.0 {
            return self.sorted[0];
        }
        let exact = p / 100.0 * self.sorted.len() as f64;
        // Guard against float noise pushing an integral rank (e.g.
        // 0.999 × 1000) up to the next sample.
        let rank = if (exact - exact.round()).abs() < 1e-6 {
            exact.round() as usize
        } else {
            exact.ceil() as usize
        };
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        assert!(!self.samples.is_empty());
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Sample standard deviation (n−1 denominator).
    pub fn std_dev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let ss: f64 = self.samples.iter().map(|x| (x - mean).powi(2)).sum();
        (ss / (n - 1) as f64).sqrt()
    }

    /// Full summary of this sample set.
    pub fn summary(&mut self) -> Summary {
        assert!(!self.samples.is_empty());
        self.ensure_sorted();
        Summary {
            n: self.samples.len(),
            mean_us: self.mean(),
            std_us: self.std_dev(),
            min_us: self.sorted[0],
            p25_us: self.percentile(25.0),
            median_us: self.percentile(50.0),
            p75_us: self.percentile(75.0),
            p95_us: self.percentile(95.0),
            p99_us: self.percentile(99.0),
            p999_us: self.percentile(99.9),
            max_us: *self.sorted.last().unwrap(),
        }
    }

    /// Histogram of the samples over `[lo, hi)` with `bins` equal bins.
    /// Out-of-range samples clamp to the edge bins so counts always total
    /// `len()`.
    pub fn histogram(&self, lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0 && hi > lo);
        let mut counts = vec![0u64; bins];
        let width = (hi - lo) / bins as f64;
        for &s in &self.samples {
            let idx = ((s - lo) / width).floor();
            let idx = (idx.max(0.0) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        Histogram { lo, hi, counts }
    }
}

/// Summary statistics of one latency distribution, in microseconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Mean.
    pub mean_us: f64,
    /// Sample standard deviation.
    pub std_us: f64,
    /// Minimum.
    pub min_us: f64,
    /// First quartile.
    pub p25_us: f64,
    /// Median.
    pub median_us: f64,
    /// Third quartile.
    pub p75_us: f64,
    /// 95th percentile (Table I, first column group).
    pub p95_us: f64,
    /// 99th percentile (Table I, second column group).
    pub p99_us: f64,
    /// 99.9th percentile (Table I, third column group).
    pub p999_us: f64,
    /// Maximum.
    pub max_us: f64,
}

impl Summary {
    /// Interquartile range, the box height in a Fig. 3-style box plot.
    pub fn iqr_us(&self) -> f64 {
        self.p75_us - self.p25_us
    }

    /// Coefficient of variation (σ/µ), the scale-free variance measure used
    /// when comparing the two drivers' spread across payload sizes.
    pub fn cv(&self) -> f64 {
        if self.mean_us == 0.0 {
            0.0
        } else {
            self.std_us / self.mean_us
        }
    }
}

/// Streaming mean/variance (Welford's online algorithm) for counters that
/// observe too many events to store individually.
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Fold in a duration, in microseconds.
    pub fn add_time(&mut self, t: Time) {
        self.add(t.as_us_f64());
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 with fewer than two observations).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Fixed-bin histogram over `[lo, hi)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    /// Lower edge of the first bin.
    pub lo: f64,
    /// Upper edge of the last bin.
    pub hi: f64,
    /// Per-bin sample counts.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Total samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// `(bin_center, count)` pairs, for plotting.
    pub fn centers(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let w = self.bin_width();
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + (i as f64 + 0.5) * w, c))
    }

    /// Render as a compact ASCII sparkline, useful in harness output.
    pub fn sparkline(&self) -> String {
        const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return " ".repeat(self.counts.len());
        }
        self.counts
            .iter()
            .map(|&c| {
                if c == 0 {
                    ' '
                } else {
                    // Scale in u128: `c * 8` overflows u64 for bin counts
                    // above u64::MAX / 8.
                    let idx = ((c as u128 * 8) / max as u128).clamp(1, 8) as usize - 1;
                    BLOCKS[idx]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_of(values: &[f64]) -> SampleSet {
        SampleSet::from_us(values.to_vec())
    }

    #[test]
    fn percentile_nearest_rank() {
        // Classic nearest-rank example.
        let mut s = set_of(&[15.0, 20.0, 35.0, 40.0, 50.0]);
        assert_eq!(s.percentile(30.0), 20.0);
        assert_eq!(s.percentile(40.0), 20.0);
        assert_eq!(s.percentile(50.0), 35.0);
        assert_eq!(s.percentile(100.0), 50.0);
        assert_eq!(s.percentile(0.0), 15.0);
    }

    #[test]
    fn percentile_of_uniform_ramp() {
        let mut s = SampleSet::with_capacity(1000);
        // Insert in shuffled-ish order to exercise the sort.
        for i in (0..1000).rev() {
            s.push(Time::from_us(i + 1));
        }
        assert_eq!(s.percentile(95.0), 950.0);
        assert_eq!(s.percentile(99.0), 990.0);
        assert_eq!(s.percentile(99.9), 999.0);
    }

    #[test]
    fn summary_fields_consistent() {
        let mut s = SampleSet::with_capacity(10_000);
        for i in 0..10_000u64 {
            s.push(Time::from_ns(1000 + (i % 100) * 10));
        }
        let sum = s.summary();
        assert_eq!(sum.n, 10_000);
        assert!(sum.min_us <= sum.p25_us);
        assert!(sum.p25_us <= sum.median_us);
        assert!(sum.median_us <= sum.p75_us);
        assert!(sum.p75_us <= sum.p95_us);
        assert!(sum.p95_us <= sum.p99_us);
        assert!(sum.p99_us <= sum.p999_us);
        assert!(sum.p999_us <= sum.max_us);
        assert!(sum.iqr_us() >= 0.0);
    }

    #[test]
    fn welford_matches_batch() {
        let values: Vec<f64> = (0..5000)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 50.0)
            .collect();
        let mut w = Welford::new();
        for &v in &values {
            w.add(v);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var =
            values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.std_dev() - var.sqrt()).abs() < 1e-9);
        assert_eq!(w.count(), 5000);
        assert!(w.min() <= mean && w.max() >= mean);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.std_dev(), 0.0);
        w.add(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.std_dev(), 0.0);
    }

    #[test]
    fn histogram_conserves_samples() {
        let s = set_of(&[-5.0, 0.0, 1.0, 2.5, 9.99, 10.0, 100.0]);
        let h = s.histogram(0.0, 10.0, 10);
        assert_eq!(h.total(), 7); // clamped samples still counted
        assert_eq!(h.counts[0], 2); // -5.0 clamps in, 0.0 lands in bin 0
        assert_eq!(h.counts[9], 3); // 9.99 plus clamped 10.0 and 100.0
        assert!((h.bin_width() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_sparkline_shape() {
        let s = set_of(&[1.0, 1.1, 1.2, 5.0]);
        let h = s.histogram(0.0, 10.0, 10);
        let line = h.sparkline();
        assert_eq!(line.chars().count(), 10);
        // Bin 1 (three samples) must render taller than bin 5 (one sample).
        let chars: Vec<char> = line.chars().collect();
        assert!(chars[1] > chars[5]);
    }

    #[test]
    fn raw_preserves_insertion_order_across_percentile_queries() {
        // Regression: `percentile`/`summary` used to sort the sample
        // vector in place, so `raw()` afterwards returned a monotone
        // ramp instead of the recorded time series.
        let mut s = SampleSet::with_capacity(8);
        s.push_us(30.0);
        s.push_us(10.0);
        assert_eq!(s.percentile(50.0), 10.0);
        assert_eq!(s.raw(), &[30.0, 10.0], "percentile must not reorder raw");
        s.push_us(20.0);
        let sum = s.summary();
        assert_eq!(sum.min_us, 10.0);
        assert_eq!(sum.max_us, 30.0);
        assert_eq!(s.raw(), &[30.0, 10.0, 20.0], "summary must not reorder raw");
        // Percentiles keep seeing new pushes.
        assert_eq!(s.percentile(100.0), 30.0);
        assert_eq!(s.percentile(0.0), 10.0);
    }

    #[test]
    fn sparkline_survives_huge_bin_counts() {
        // Regression: the scaling `c * 8 / max` was done in u64 and
        // overflowed for counts above u64::MAX / 8.
        let h = Histogram {
            lo: 0.0,
            hi: 2.0,
            counts: vec![u64::MAX, u64::MAX / 2 + 1, 1, 0],
        };
        let line: Vec<char> = h.sparkline().chars().collect();
        assert_eq!(line[0], '█', "max bin renders full height");
        assert_eq!(line[1], '▄', "half-max bin renders mid height");
        assert_eq!(line[2], '▁', "tiny bin still visible");
        assert_eq!(line[3], ' ');
    }

    #[test]
    fn cv_scale_free() {
        let mut a = set_of(&[10.0, 12.0, 14.0]);
        let mut b = set_of(&[100.0, 120.0, 140.0]);
        let (sa, sb) = (a.summary(), b.summary());
        assert!((sa.cv() - sb.cv()).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn percentile_empty_panics() {
        let mut s = SampleSet::default();
        let _ = s.percentile(50.0);
    }
}
