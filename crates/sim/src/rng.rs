//! Deterministic randomness for simulations.
//!
//! Every stochastic element of the testbed (software-step jitter, noise
//! spikes, workload payload contents) draws from a [`SimRng`] derived from
//! the experiment seed, so a run is exactly reproducible from `(seed,
//! configuration)`. Independent subsystems derive independent streams with
//! [`SimRng::derive`], which keeps their draws uncorrelated even when the
//! order of events between them changes (e.g. when a configuration change
//! reorders link transactions).
//!
//! The distribution samplers needed by the noise model (normal, lognormal,
//! exponential, Pareto) are implemented here directly — `rand` 0.8 ships
//! only uniform distributions in the core crate, and the handful of
//! samplers we need is small enough that pulling in `rand_distr` is not
//! justified (see DESIGN.md §4).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64 step — used to expand a `u64` seed into independent stream
/// seeds. This is the standard seed-sequencing construction (Steele et al.,
/// "Fast Splittable Pseudorandom Number Generators", OOPSLA'14).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic RNG stream for one subsystem of one simulation run.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: SmallRng,
    /// The root seed this stream was ultimately derived from (for reports).
    root_seed: u64,
}

impl SimRng {
    /// Root stream for an experiment seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        // Two splitmix outputs give a full 16-byte SmallRng seed with good
        // avalanche even for adjacent experiment seeds (0, 1, 2, ...).
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&a.to_le_bytes());
        bytes[8..16].copy_from_slice(&b.to_le_bytes());
        bytes[16..24].copy_from_slice(&a.rotate_left(17).to_le_bytes());
        bytes[24..].copy_from_slice(&b.rotate_left(31).to_le_bytes());
        SimRng {
            inner: SmallRng::from_seed(bytes),
            root_seed: seed,
        }
    }

    /// Derive an independent child stream identified by `tag`. Streams with
    /// distinct tags are statistically independent; the same `(seed, tag)`
    /// always yields the same stream.
    pub fn derive(&self, tag: u64) -> SimRng {
        let mut s = self
            .root_seed
            .wrapping_mul(0xA24B_AED4_963E_E407)
            .wrapping_add(tag);
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&a.to_le_bytes());
        bytes[8..16].copy_from_slice(&b.to_le_bytes());
        bytes[16..24].copy_from_slice(&splitmix64(&mut s).to_le_bytes());
        bytes[24..].copy_from_slice(&splitmix64(&mut s).to_le_bytes());
        SimRng {
            inner: SmallRng::from_seed(bytes),
            root_seed: self.root_seed,
        }
    }

    /// The experiment seed this stream derives from.
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.uniform() < p
    }

    /// Standard normal via Box–Muller. One value per call; the twin value is
    /// discarded for simplicity (sampling is far from the hot path).
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Lognormal parameterized by its **median** and log-space sigma:
    /// `median * exp(sigma * N(0,1))`. This parameterization is used
    /// throughout the noise model because medians are what the calibration
    /// targets specify.
    #[inline]
    pub fn lognormal_median(&mut self, median: f64, sigma: f64) -> f64 {
        median * (sigma * self.standard_normal()).exp()
    }

    /// Exponential with the given mean (inverse-CDF method).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Pareto (type I) with scale `x_min` and shape `alpha` — heavy-tailed;
    /// used for the rare large OS spikes behind the 99.9th percentiles.
    #[inline]
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(alpha > 0.0 && x_min > 0.0);
        x_min / (1.0 - self.uniform()).powf(1.0 / alpha)
    }

    /// Fill a byte buffer (workload payload generation).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }

    /// A random u64 (for MAC addresses, cookie values, ...).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_are_independent_and_stable() {
        let root = SimRng::new(42);
        let mut s1 = root.derive(1);
        let mut s1_again = root.derive(1);
        let mut s2 = root.derive(2);
        let v1: Vec<u64> = (0..32).map(|_| s1.next_u64()).collect();
        let v1b: Vec<u64> = (0..32).map(|_| s1_again.next_u64()).collect();
        let v2: Vec<u64> = (0..32).map(|_| s2.next_u64()).collect();
        assert_eq!(v1, v1b);
        assert_ne!(v1, v2);
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = SimRng::new(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(4);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean = {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std = {}", var.sqrt());
    }

    #[test]
    fn lognormal_median_is_parameter() {
        let mut rng = SimRng::new(5);
        let n = 100_001;
        let mut samples: Vec<f64> = (0..n).map(|_| rng.lognormal_median(2.5, 0.8)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 2.5).abs() < 0.08, "median = {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::new(6);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(7.0)).sum::<f64>() / n as f64;
        assert!((mean - 7.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(rng.pareto(3.0, 2.0) >= 3.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(8);
        assert!(!rng.chance(0.0));
        assert!((0..100).all(|_| rng.chance(1.0 + 1e-12)));
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SimRng::new(9);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }
}
