//! The pre-wheel reference engine, preserved for differential validation.
//!
//! [`HeapSimulation`] is the engine exactly as it shipped before the
//! timing-wheel refactor: a `BinaryHeap<Reverse<Scheduled>>` ordered by
//! `(time, sequence)`, with a fresh staging `Vec` allocated for every
//! delivery. It is deliberately **not** optimized — it exists so that
//!
//! * `tests/prop_wheel.rs` can drive random event streams through both
//!   engines and require event-for-event identical delivery, and
//! * the `sim_core` bench can report the wheel's speedup against the real
//!   historical baseline rather than a synthetic strawman.
//!
//! It shares [`World`], [`Scheduler`], and [`RunOutcome`] with the wheel
//! engine, so any world runs under either unchanged. Do not use it outside
//! tests and benches; [`Simulation`](crate::engine::Simulation) is the
//! engine everything else should be on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::engine::{RunOutcome, Scheduler, World};
use crate::time::Time;

/// An event in the reference queue: delivery time, FIFO sequence number,
/// message.
struct Scheduled<M> {
    at: Time,
    seq: u64,
    msg: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The original binary-heap discrete-event engine over world `W`.
///
/// API-identical to [`Simulation`](crate::engine::Simulation) (minus the
/// delivery hook, which no differential consumer needs); see the module
/// docs for why it is kept.
pub struct HeapSimulation<W: World> {
    /// The modeled system.
    pub world: W,
    queue: BinaryHeap<Reverse<Scheduled<W::Msg>>>,
    now: Time,
    seq: u64,
    delivered: u64,
}

impl<W: World> HeapSimulation<W> {
    /// Create a simulation at time zero with an empty queue.
    pub fn new(world: W) -> Self {
        HeapSimulation {
            world,
            queue: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            delivered: 0,
        }
    }

    /// Current simulated time (the timestamp of the last delivered event).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events delivered so far.
    #[inline]
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events currently pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule a message from outside the event loop.
    pub fn schedule(&mut self, delay: Time, msg: W::Msg) {
        self.schedule_at(self.now + delay, msg);
    }

    /// Schedule at an absolute instant (clamped to now).
    pub fn schedule_at(&mut self, at: Time, msg: W::Msg) {
        let at = at.max(self.now);
        self.queue.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            msg,
        }));
        self.seq += 1;
    }

    /// Deliver the single earliest event. Returns `false` if the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        // The historical per-delivery allocation, kept on purpose: this is
        // the baseline the wheel engine is measured against.
        let mut sched = Scheduler::with_buffer(self.now, Vec::new());
        self.world.deliver(self.now, ev.msg, &mut sched);
        self.delivered += 1;
        for (at, msg) in sched.into_buffer() {
            self.queue.push(Reverse(Scheduled {
                at,
                seq: self.seq,
                msg,
            }));
            self.seq += 1;
        }
        true
    }

    /// Run until the queue drains, `horizon` is passed, or `max_events`
    /// deliveries have been made.
    pub fn run(&mut self, horizon: Time, max_events: u64) -> RunOutcome {
        let budget_end = self.delivered.saturating_add(max_events);
        loop {
            match self.queue.peek() {
                None => return RunOutcome::Idle,
                Some(Reverse(ev)) if ev.at > horizon => return RunOutcome::Horizon,
                Some(_) => {}
            }
            if self.delivered >= budget_end {
                return RunOutcome::EventBudget;
            }
            self.step();
        }
    }

    /// Run until the queue drains (with a generous livelock guard).
    pub fn run_to_idle(&mut self) -> RunOutcome {
        self.run(Time::MAX, u64::MAX / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Countdown {
        log: Vec<(Time, u32)>,
    }

    impl World for Countdown {
        type Msg = u32;
        fn deliver(&mut self, now: Time, msg: u32, sched: &mut Scheduler<u32>) {
            self.log.push((now, msg));
            if msg > 0 {
                sched.after(Time::from_ns(10), msg - 1);
            }
        }
    }

    #[test]
    fn reference_engine_matches_documented_semantics() {
        let mut sim = HeapSimulation::new(Countdown { log: Vec::new() });
        sim.schedule(Time::from_ns(5), 3);
        assert_eq!(sim.run_to_idle(), RunOutcome::Idle);
        assert_eq!(
            sim.world.log,
            vec![
                (Time::from_ns(5), 3),
                (Time::from_ns(15), 2),
                (Time::from_ns(25), 1),
                (Time::from_ns(35), 0),
            ]
        );
        assert_eq!(sim.events_delivered(), 4);
        assert_eq!(sim.pending(), 0);
    }
}
