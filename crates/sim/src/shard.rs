//! Conservative parallel sharding: one simulation across worker threads
//! (E25).
//!
//! A [`ShardedSimulation`] partitions one logical discrete-event
//! simulation into shards, each running its own timing-wheel
//! [`Simulation`] over a disjoint slice of the model. Shards exchange
//! cross-shard events through a **timestamp-ordered merge** under a
//! conservative lookahead contract (null-message Chandy–Misra–Bryant
//! lineage): a message emitted at local time `t` may not take effect on
//! another shard before `t + lookahead`. The engine advances in bounded
//! windows — with one coordinating thread, the distributed algorithm's
//! per-link null messages and lower-bound-timestamp (LBTS) exchange
//! collapse to a barrier:
//!
//! 1. **LBTS** — the coordinator reads every shard's earliest pending
//!    event; the minimum `T` is the global lower bound (no shard can
//!    ever deliver anything earlier).
//! 2. **Window** — every shard, in parallel, runs its local events in
//!    `[T, T + lookahead)`. No event inside the window can be affected
//!    by a cross-shard message emitted *in* the window, because the
//!    lookahead contract puts every such message at `≥ T + lookahead`.
//! 3. **Merge** — emitted envelopes are drained, sorted by the total
//!    `(time, seq, shard)` key, and inserted into the destination
//!    shards' wheels before the next window starts.
//!
//! Determinism: window boundaries are a pure function of the model
//! (never of wall-clock), each shard's wheel keeps FIFO order at equal
//! timestamps, and the merge key is total — so per-shard delivery order
//! is **independent of worker-thread count and OS scheduling**. For a
//! world whose event arrivals are unique per shard (physical-time
//! models; the PCIe wire serializes, so two TLPs never land on the same
//! picosecond of one shard's wire), the order also equals what the
//! monolithic single-[`Simulation`] run delivers — the differential
//! property suite in `tests/prop_shard.rs` pins both claims.
//!
//! ```
//! use vf_sim::{Outbox, RunOutcome, Scheduler, ShardWorld, ShardedSimulation, Time};
//!
//! /// Two counters ping-ponging across shards, 1 µs of flight apart.
//! struct Relay {
//!     peer: usize,
//!     log: Vec<Time>,
//! }
//! impl ShardWorld for Relay {
//!     type Msg = u32;
//!     fn deliver(&mut self, now: Time, hops: u32, _: &mut Scheduler<u32>, net: &mut Outbox<'_, u32>) {
//!         self.log.push(now);
//!         if hops > 0 {
//!             net.send(self.peer, now + Time::from_us(1), hops - 1);
//!         }
//!     }
//! }
//!
//! let shards = vec![
//!     Relay { peer: 1, log: Vec::new() },
//!     Relay { peer: 0, log: Vec::new() },
//! ];
//! let mut sim = ShardedSimulation::new(shards, Time::from_us(1));
//! sim.schedule_at(0, Time::from_us(1), 3);
//! assert_eq!(sim.run_to_idle(), RunOutcome::Idle);
//! assert_eq!(sim.world(0).log, vec![Time::from_us(1), Time::from_us(3)]);
//! assert_eq!(sim.world(1).log, vec![Time::from_us(2), Time::from_us(4)]);
//! ```

use std::thread;

use crate::engine::{RunOutcome, Scheduler, Simulation, World};
use crate::time::Time;

/// A world that can run as one shard of a [`ShardedSimulation`]: like
/// [`World`], plus an [`Outbox`] for messages that cross shards.
///
/// Local follow-up events go through the [`Scheduler`] exactly as in a
/// plain simulation. Events for *other* shards go through
/// [`Outbox::send`] and must respect the lookahead contract — see the
/// module docs.
pub trait ShardWorld: Send {
    /// The message type carried by events (local and cross-shard).
    type Msg: Send;

    /// Deliver one message at simulated instant `now`.
    fn deliver(
        &mut self,
        now: Time,
        msg: Self::Msg,
        sched: &mut Scheduler<Self::Msg>,
        net: &mut Outbox<'_, Self::Msg>,
    );
}

/// Handle through which a [`ShardWorld`] posts cross-shard events while
/// one of its own is being delivered. Every send is stamped with the
/// emitting shard and a per-shard sequence number — the `(time, seq,
/// shard)` merge key that makes delivery order independent of which
/// worker thread ran which shard when.
pub struct Outbox<'a, M> {
    from: usize,
    now: Time,
    lookahead: Time,
    emitted: &'a mut u64,
    out: &'a mut Vec<Envelope<M>>,
}

impl<M> Outbox<'_, M> {
    /// Post `msg` to shard `to`, taking effect at absolute instant `at`.
    ///
    /// # Panics
    ///
    /// If `at < now + lookahead`: the conservative window protocol is
    /// only correct when every cross-shard effect is at least one
    /// lookahead away, so a closer send is a modeling bug, not a
    /// schedulable event.
    pub fn send(&mut self, to: usize, at: Time, msg: M) {
        assert!(
            at >= self.now + self.lookahead,
            "cross-shard send violates the lookahead contract: \
             at {at:?} < now {:?} + lookahead {:?}",
            self.now,
            self.lookahead,
        );
        let seq = *self.emitted;
        *self.emitted += 1;
        self.out.push(Envelope {
            at,
            seq,
            from: self.from,
            to,
            msg,
        });
    }

    /// The shard this outbox belongs to.
    #[inline]
    pub fn shard(&self) -> usize {
        self.from
    }

    /// The lookahead every send must clear.
    #[inline]
    pub fn lookahead(&self) -> Time {
        self.lookahead
    }
}

/// One cross-shard message in flight between windows.
struct Envelope<M> {
    at: Time,
    seq: u64,
    from: usize,
    to: usize,
    msg: M,
}

/// Adapter giving each shard's inner [`Simulation`] a [`World`] view of
/// its [`ShardWorld`], threading the outbox through every delivery.
struct Cell<W: ShardWorld> {
    world: W,
    id: usize,
    lookahead: Time,
    emitted: u64,
    out: Vec<Envelope<W::Msg>>,
}

impl<W: ShardWorld> World for Cell<W> {
    type Msg = W::Msg;

    fn deliver(&mut self, now: Time, msg: W::Msg, sched: &mut Scheduler<W::Msg>) {
        let mut net = Outbox {
            from: self.id,
            now,
            lookahead: self.lookahead,
            emitted: &mut self.emitted,
            out: &mut self.out,
        };
        self.world.deliver(now, msg, sched, &mut net);
    }
}

/// Any plain [`World`] as a single-component [`ShardWorld`] that never
/// crosses shards. This is how the fully-coupled testbed worlds (the
/// shared-wire MQ and tenant models — see DESIGN §2.1.2) ride the
/// sharded engine: their one shard takes the engine's single-shard fast
/// path, which delegates straight to the inner [`Simulation`] and is
/// therefore bit-identical to the monolithic run by construction.
pub struct Coupled<W: World>(pub W);

impl<W: World + Send> ShardWorld for Coupled<W>
where
    W::Msg: Send,
{
    type Msg = W::Msg;

    fn deliver(
        &mut self,
        now: Time,
        msg: W::Msg,
        sched: &mut Scheduler<W::Msg>,
        _net: &mut Outbox<'_, W::Msg>,
    ) {
        self.0.deliver(now, msg, sched);
    }
}

/// A [`World`] that can describe how to split itself across shards —
/// the seam `run_mq`/`run_tenants` use so driver code never learns
/// about sharding.
///
/// A world that is fully coupled (every event touches shared state, as
/// the multi-tag PCIe wire model is today) reports one component and
/// partitions into `vec![self]`; a future world with per-shard wire
/// reservations can return a real decomposition without any caller
/// changing.
pub trait ShardableWorld: World + Sized {
    /// Independently schedulable components (1 = fully coupled).
    fn components(&self) -> usize {
        1
    }

    /// Conservative lookahead between components: a lower bound on how
    /// long any cross-component effect takes (for PCIe-coupled worlds,
    /// the link's minimum one-way flight time).
    fn lookahead(&self) -> Time;

    /// Consume the world into at most `max_shards` shard worlds.
    fn partition(self, max_shards: usize) -> Vec<Self>;
}

/// Run a [`ShardableWorld`] to completion on the sharded engine: the
/// shared drive loop behind `run_mq --shards N` and friends.
///
/// Partitions the world (a coupled world yields one shard regardless of
/// `shards`), wraps each piece in [`Coupled`], schedules `initial`
/// stimulus into shard 0, and runs with up to `threads` workers.
/// Returns the shard worlds (in partition order), the final simulated
/// time, and the run outcome.
pub fn run_partitioned<W>(
    world: W,
    shards: usize,
    threads: usize,
    initial: Vec<(Time, W::Msg)>,
    horizon: Time,
    max_events: u64,
) -> (Vec<W>, Time, RunOutcome)
where
    W: ShardableWorld + Send,
    W::Msg: Send,
{
    let lookahead = world.lookahead();
    let worlds = world.partition(shards.max(1));
    let n = worlds.len();
    let mut sim = ShardedSimulation::new(worlds.into_iter().map(Coupled).collect(), lookahead)
        .with_threads(threads.clamp(1, n));
    for (at, msg) in initial {
        sim.schedule_at(0, at, msg);
    }
    let outcome = sim.run(horizon, max_events);
    let now = sim.now();
    let worlds = sim.into_worlds().into_iter().map(|c| c.0).collect();
    (worlds, now, outcome)
}

/// A discrete-event simulation sharded across worker threads.
///
/// See the module docs for the protocol. The public surface mirrors
/// [`Simulation`] (`schedule_at` / `run` / `run_to_idle` / `now` /
/// `events_delivered`), with shard-indexed world access.
pub struct ShardedSimulation<W: ShardWorld> {
    shards: Vec<Simulation<Cell<W>>>,
    lookahead: Time,
    threads: usize,
    windows: u64,
    merged: u64,
}

impl<W: ShardWorld> ShardedSimulation<W>
where
    W::Msg: Send,
{
    /// Create a sharded simulation at time zero, one shard per world.
    ///
    /// # Panics
    ///
    /// If `worlds` is empty, or if more than one shard is given with a
    /// zero lookahead (the conservative window would never advance past
    /// a cross-shard dependency).
    pub fn new(worlds: Vec<W>, lookahead: Time) -> Self {
        assert!(!worlds.is_empty(), "a sharded simulation needs a shard");
        assert!(
            worlds.len() == 1 || lookahead > Time::ZERO,
            "multi-shard simulation requires a positive lookahead"
        );
        let shards = worlds
            .into_iter()
            .enumerate()
            .map(|(id, world)| {
                Simulation::new(Cell {
                    world,
                    id,
                    lookahead,
                    emitted: 0,
                    out: Vec::new(),
                })
            })
            .collect::<Vec<_>>();
        let threads = crate::sweep::default_threads().clamp(1, shards.len());
        ShardedSimulation {
            shards,
            lookahead,
            threads,
            windows: 0,
            merged: 0,
        }
    }

    /// Cap the worker threads used per window (clamped to `[1, shards]`).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.clamp(1, self.shards.len());
        self
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The lookahead the merge protocol is running with.
    #[inline]
    pub fn lookahead(&self) -> Time {
        self.lookahead
    }

    /// Shard `i`'s world.
    pub fn world(&self, i: usize) -> &W {
        &self.shards[i].world.world
    }

    /// Shard `i`'s world, mutably (between runs: inspect or inject).
    pub fn world_mut(&mut self, i: usize) -> &mut W {
        &mut self.shards[i].world.world
    }

    /// Consume the simulation into its shard worlds, in shard order.
    pub fn into_worlds(self) -> Vec<W> {
        self.shards.into_iter().map(|s| s.world.world).collect()
    }

    /// Schedule stimulus into shard `shard` at absolute instant `at`
    /// (clamped to that shard's local clock).
    pub fn schedule_at(&mut self, shard: usize, at: Time, msg: W::Msg) {
        self.shards[shard].schedule_at(at, msg);
    }

    /// The committed frontier: the latest instant any shard has reached.
    /// With one shard this is exactly [`Simulation::now`].
    pub fn now(&self) -> Time {
        self.shards
            .iter()
            .map(|s| s.now())
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Total events delivered across all shards.
    pub fn events_delivered(&self) -> u64 {
        self.shards.iter().map(|s| s.events_delivered()).sum()
    }

    /// Total events pending across all shards (cross-shard envelopes
    /// are always merged into a wheel before control returns, so there
    /// is never anything in flight between calls).
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.pending()).sum()
    }

    /// Synchronization windows committed so far.
    #[inline]
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Cross-shard envelopes merged so far.
    #[inline]
    pub fn merged_events(&self) -> u64 {
        self.merged
    }

    /// Run until every shard drains, `horizon` is passed, or
    /// `max_events` deliveries (summed over shards) have been made.
    ///
    /// Exactly like [`Simulation::run`], and with one shard it *is*
    /// that call. With several shards the event budget is enforced at
    /// window boundaries: a window in flight may finish before the
    /// budget stops the run, so treat `max_events` as the livelock
    /// guard it is, not an exact step counter.
    pub fn run(&mut self, horizon: Time, max_events: u64) -> RunOutcome {
        if self.shards.len() == 1 {
            // Fast path: one shard is the monolithic engine,
            // bit-identical semantics included.
            return self.shards[0].run(horizon, max_events);
        }
        let budget_end = self.events_delivered().saturating_add(max_events);
        loop {
            // LBTS exchange: the earliest pending event anywhere is the
            // global lower bound on what any shard may still deliver.
            let Some(next) = self
                .shards
                .iter_mut()
                .filter_map(|s| s.next_event_at())
                .min()
            else {
                return RunOutcome::Idle;
            };
            if next > horizon {
                return RunOutcome::Horizon;
            }
            let delivered = self.events_delivered();
            if delivered >= budget_end {
                return RunOutcome::EventBudget;
            }
            // Window [next, next + lookahead), clamped to the horizon.
            // `run` horizons are inclusive, so the exclusive window end
            // backs off one tick.
            let cap = Time::from_ps(
                next.as_ps()
                    .saturating_add(self.lookahead.as_ps())
                    .saturating_sub(1),
            )
            .min(horizon);
            self.run_window(cap, budget_end - delivered);
            self.windows += 1;
            // Deterministic timestamp-ordered merge: drain every
            // outbox, sort by the total (time, seq, shard) key, insert
            // into the destination wheels. Insertion order fixes the
            // wheels' FIFO order at equal timestamps, so the merge —
            // not thread completion order — decides ties.
            let mut batch: Vec<Envelope<W::Msg>> = Vec::new();
            for shard in &mut self.shards {
                batch.append(&mut shard.world.out);
            }
            batch.sort_by_key(|e| (e.at, e.seq, e.from));
            self.merged += batch.len() as u64;
            for e in batch {
                debug_assert!(
                    e.at > self.shards[e.to].now(),
                    "lookahead admitted a message into a shard's past"
                );
                self.shards[e.to].schedule_at(e.at, e.msg);
            }
        }
    }

    /// Run one window: every shard advances to `cap` (inclusive), in
    /// parallel when more than one worker thread is configured.
    fn run_window(&mut self, cap: Time, budget: u64) {
        let threads = self.threads.min(self.shards.len());
        if threads <= 1 {
            for shard in &mut self.shards {
                shard.run(cap, budget);
            }
            return;
        }
        let per = self.shards.len().div_ceil(threads);
        thread::scope(|scope| {
            for chunk in self.shards.chunks_mut(per) {
                scope.spawn(move || {
                    for shard in chunk {
                        shard.run(cap, budget);
                    }
                });
            }
        });
    }

    /// Run until every shard drains (with a generous livelock guard).
    pub fn run_to_idle(&mut self) -> RunOutcome {
        self.run(Time::MAX, u64::MAX / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// K round-robin token rings over the shards: shard `i` forwards
    /// each token to shard `(i + 1) % n` one lookahead later, logging
    /// every arrival.
    struct Ring {
        id: usize,
        n: usize,
        hop: Time,
        log: Vec<(Time, u32)>,
    }

    impl ShardWorld for Ring {
        type Msg = u32;

        fn deliver(
            &mut self,
            now: Time,
            token: u32,
            _sched: &mut Scheduler<u32>,
            net: &mut Outbox<'_, u32>,
        ) {
            self.log.push((now, token));
            if token > 0 {
                net.send((self.id + 1) % self.n, now + self.hop, token - 1);
            }
        }
    }

    fn ring(n: usize, hop: Time) -> ShardedSimulation<Ring> {
        let worlds = (0..n)
            .map(|id| Ring {
                id,
                n,
                hop,
                log: Vec::new(),
            })
            .collect();
        ShardedSimulation::new(worlds, hop)
    }

    #[test]
    fn tokens_circulate_and_drain() {
        let hop = Time::from_us(1);
        let mut sim = ring(3, hop);
        sim.schedule_at(0, Time::from_us(1), 7);
        assert_eq!(sim.run_to_idle(), RunOutcome::Idle);
        assert_eq!(sim.events_delivered(), 8);
        // Token visits shards 0,1,2,0,1,2,0,1 at 1 µs intervals.
        assert_eq!(sim.world(0).log.len(), 3);
        assert_eq!(sim.world(1).log.len(), 3);
        assert_eq!(sim.world(2).log.len(), 2);
        assert_eq!(sim.world(1).log[0], (Time::from_us(2), 6));
        assert_eq!(sim.now(), Time::from_us(8));
        assert_eq!(sim.merged_events(), 7);
        assert!(sim.windows() >= 7);
    }

    #[test]
    fn thread_count_does_not_change_delivery() {
        let hop = Time::from_ns(300);
        let run = |threads: usize| {
            let mut sim = ring(4, hop).with_threads(threads);
            for t in 0..4 {
                sim.schedule_at(t, Time::from_ns(100 * (t as u64 + 1)), 40);
            }
            assert_eq!(sim.run_to_idle(), RunOutcome::Idle);
            (0..4).map(|i| sim.world(i).log.clone()).collect::<Vec<_>>()
        };
        let serial = run(1);
        for threads in [2, 4] {
            assert_eq!(run(threads), serial, "{threads} threads diverged");
        }
    }

    #[test]
    fn horizon_pauses_and_resumes() {
        let hop = Time::from_us(1);
        let mut sim = ring(2, hop);
        sim.schedule_at(0, Time::from_us(1), 9);
        assert_eq!(sim.run(Time::from_us(4), u64::MAX / 2), RunOutcome::Horizon);
        let so_far = sim.events_delivered();
        assert_eq!(so_far, 4); // arrivals at 1, 2, 3, 4 µs
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.run_to_idle(), RunOutcome::Idle);
        assert_eq!(sim.events_delivered(), 10);
    }

    #[test]
    fn event_budget_stops_at_a_window_boundary() {
        let hop = Time::from_us(1);
        let mut sim = ring(2, hop);
        sim.schedule_at(0, Time::from_us(1), 100);
        let outcome = sim.run(Time::MAX, 5);
        assert_eq!(outcome, RunOutcome::EventBudget);
        assert!(sim.events_delivered() >= 5);
        assert_eq!(sim.run_to_idle(), RunOutcome::Idle);
        assert_eq!(sim.events_delivered(), 101);
    }

    #[test]
    fn merge_ties_follow_time_seq_shard_order() {
        /// Every shard fires one local event, then floods shard 0 with
        /// same-instant envelopes; arrival order must be (seq, shard).
        struct Flood {
            id: usize,
            log: Vec<u32>,
        }
        impl ShardWorld for Flood {
            type Msg = u32;
            fn deliver(
                &mut self,
                now: Time,
                msg: u32,
                _sched: &mut Scheduler<u32>,
                net: &mut Outbox<'_, u32>,
            ) {
                self.log.push(msg);
                if msg == 0 {
                    // Two sends per shard, all landing at 10 µs: seq 0
                    // then seq 1 per shard, shards tie-broken last.
                    let id = self.id as u32;
                    net.send(0, now + Time::from_us(9), 100 + id);
                    net.send(0, now + Time::from_us(9), 200 + id);
                }
            }
        }
        let worlds = (0..3)
            .map(|id| Flood {
                id,
                log: Vec::new(),
            })
            .collect();
        let mut sim = ShardedSimulation::new(worlds, Time::from_us(1));
        for shard in 0..3 {
            sim.schedule_at(shard, Time::from_us(1), 0);
        }
        assert_eq!(sim.run_to_idle(), RunOutcome::Idle);
        // (time, seq, shard): all six land at 10 µs; seq orders each
        // shard's first send before any second send, shard id breaks
        // the remaining ties.
        assert_eq!(
            sim.world(0).log,
            vec![0, 100, 101, 102, 200, 201, 202],
            "merge tie-break must be (time, seq, shard)"
        );
    }

    #[test]
    #[should_panic(expected = "lookahead contract")]
    fn lookahead_violation_panics() {
        let hop = Time::from_us(1);
        struct Cheat;
        impl ShardWorld for Cheat {
            type Msg = ();
            fn deliver(
                &mut self,
                now: Time,
                _msg: (),
                _sched: &mut Scheduler<()>,
                net: &mut Outbox<'_, ()>,
            ) {
                net.send(1, now + Time::from_ns(1), ());
            }
        }
        let mut sim = ShardedSimulation::new(vec![Cheat, Cheat], hop);
        sim.schedule_at(0, Time::from_us(1), ());
        sim.run_to_idle();
    }

    #[test]
    fn single_shard_fast_path_matches_simulation_semantics() {
        struct Count(u64);
        impl ShardWorld for Count {
            type Msg = ();
            fn deliver(
                &mut self,
                _now: Time,
                _msg: (),
                sched: &mut Scheduler<()>,
                _net: &mut Outbox<'_, ()>,
            ) {
                self.0 += 1;
                if self.0 < 10 {
                    sched.after(Time::from_ns(10), ());
                }
            }
        }
        // Zero lookahead is allowed with one shard: the fast path never
        // opens a window.
        let mut sim = ShardedSimulation::new(vec![Count(0)], Time::ZERO);
        sim.schedule_at(0, Time::from_ns(5), ());
        assert_eq!(
            sim.run(Time::from_ns(44), u64::MAX / 2),
            RunOutcome::Horizon
        );
        assert_eq!(sim.events_delivered(), 4);
        assert_eq!(sim.run_to_idle(), RunOutcome::Idle);
        assert_eq!(sim.world(0).0, 10);
        assert_eq!(sim.now(), Time::from_ns(95));
    }

    #[test]
    fn coupled_world_rides_the_sharded_engine_unchanged() {
        struct Countdown(Vec<(Time, u32)>);
        impl World for Countdown {
            type Msg = u32;
            fn deliver(&mut self, now: Time, msg: u32, sched: &mut Scheduler<u32>) {
                self.0.push((now, msg));
                if msg > 0 {
                    sched.after(Time::from_ns(10), msg - 1);
                }
            }
        }
        let mut mono = Simulation::new(Countdown(Vec::new()));
        mono.schedule_at(Time::from_ns(5), 3);
        mono.run_to_idle();

        let mut sharded = ShardedSimulation::new(vec![Coupled(Countdown(Vec::new()))], Time::ZERO);
        sharded.schedule_at(0, Time::from_ns(5), 3);
        assert_eq!(sharded.run_to_idle(), RunOutcome::Idle);
        assert_eq!(sharded.world(0).0 .0, mono.world.0);
        assert_eq!(sharded.now(), mono.now());
        assert_eq!(sharded.events_delivered(), mono.events_delivered());
    }
}
