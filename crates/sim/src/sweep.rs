//! Parallel parameter sweeps.
//!
//! Every experiment in the reproduction is a sweep over independent
//! configurations (payload size × driver × seed). Each configuration runs
//! its own `Simulation` — there is no shared mutable state between runs —
//! so the sweep is embarrassingly parallel and is spread across OS threads
//! with scoped threads. Results come back **in input order** regardless of
//! completion order, so reports are deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Run `f` over every item of `inputs` on up to `max_threads` worker
/// threads, returning outputs in input order.
///
/// Work is distributed by atomic work-stealing over an index counter, which
/// balances sweeps whose per-item cost varies by orders of magnitude (a
/// 64 B run finishes long before a 1 KiB run).
///
/// Panics in `f` are propagated to the caller.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, max_threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    assert!(max_threads > 0);
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = max_threads.min(n);
    if threads == 1 {
        return inputs.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    // Hand each worker a disjoint view of the output slots via raw parts is
    // unnecessary: collect (index, value) pairs per worker and merge after
    // the scope instead — simpler and still allocation-light.
    let results: Vec<Vec<(usize, O)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let inputs = &inputs;
                let f = &f;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        mine.push((idx, f(&inputs[idx])));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });

    for chunk in results {
        for (idx, out) in chunk {
            debug_assert!(slots[idx].is_none());
            slots[idx] = Some(out);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("sweep slot unfilled"))
        .collect()
}

/// Default thread count for sweeps and shard windows: the `VF_THREADS`
/// environment variable when set to a positive integer (clamped to
/// [`MAX_THREADS`]), otherwise the machine's parallelism, leaving the
/// result at least 1.
///
/// The override lets CI pin parallelism for reproducible wall-clock
/// smokes and lets laptops throttle a sweep without touching code;
/// an unparsable or zero value falls back to the hardware count.
pub fn default_threads() -> usize {
    if let Ok(raw) = std::env::var("VF_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n.min(MAX_THREADS);
            }
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Upper clamp for the `VF_THREADS` override: far above any real core
/// count, low enough that a typo ("1000000") cannot ask the OS for a
/// million scoped threads.
pub const MAX_THREADS: usize = 256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let inputs: Vec<u64> = (0..257).collect();
        let outputs = parallel_map(inputs.clone(), 8, |&x| x * x);
        assert_eq!(outputs, inputs.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let outputs = parallel_map(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(outputs, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let outputs: Vec<u32> = parallel_map(Vec::<u32>::new(), 4, |&x| x);
        assert!(outputs.is_empty());
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs must all complete.
        let inputs: Vec<u64> = (0..64).collect();
        let outputs = parallel_map(inputs, 4, |&x| {
            let spin = if x % 7 == 0 { 200_000 } else { 10 };
            (0..spin).fold(x, |acc, _| acc.wrapping_mul(6364136223846793005))
        });
        assert_eq!(outputs.len(), 64);
    }

    #[test]
    fn more_threads_than_items() {
        let outputs = parallel_map(vec![5, 6], 32, |&x| x * 10);
        assert_eq!(outputs, vec![50, 60]);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let _ = parallel_map(vec![0u32, 1, 2], 2, |&x| {
            assert_ne!(x, 1, "boom");
            x
        });
    }

    /// All `VF_THREADS` scenarios in one test: the test harness runs
    /// `#[test]` functions concurrently, and the environment is process
    /// global, so splitting these into separate tests would race.
    #[test]
    fn vf_threads_override() {
        let hw = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let with_env = |val: Option<&str>, f: &dyn Fn()| {
            match val {
                Some(v) => std::env::set_var("VF_THREADS", v),
                None => std::env::remove_var("VF_THREADS"),
            }
            f();
            std::env::remove_var("VF_THREADS");
        };
        with_env(None, &|| assert_eq!(default_threads(), hw));
        with_env(Some("3"), &|| assert_eq!(default_threads(), 3));
        with_env(Some(" 12 "), &|| assert_eq!(default_threads(), 12));
        // Clamped, not rejected: a huge ask caps at MAX_THREADS.
        with_env(Some("1000000"), &|| {
            assert_eq!(default_threads(), MAX_THREADS)
        });
        // Invalid or zero values fall back to the hardware count.
        with_env(Some("0"), &|| assert_eq!(default_threads(), hw));
        with_env(Some("lots"), &|| assert_eq!(default_threads(), hw));
        with_env(Some(""), &|| assert_eq!(default_threads(), hw));
        with_env(Some("-2"), &|| assert_eq!(default_threads(), hw));
    }
}
