//! The discrete-event engine.
//!
//! A [`Simulation`] owns a time-ordered event queue and a user-supplied
//! [`World`]. Each event carries a world-defined message; delivering an event
//! hands the message to [`World::deliver`], which may schedule further events
//! through the [`Scheduler`] handle it receives. Events at equal timestamps
//! are delivered in scheduling order (deterministic FIFO tie-break), so a
//! simulation is a pure function of its seed and initial events — a property
//! the reproduction harness relies on for run-to-run comparability.
//!
//! The event queue is a hierarchical [`TimingWheel`](crate::wheel) with a
//! slab/freelist node store, replacing the original
//! `BinaryHeap<Reverse<Scheduled>>`: inserts and pops are `O(1)` amortized
//! instead of `O(log n)`, and the steady-state loop performs **no heap
//! allocation** — the staging buffer a delivery schedules into is recycled
//! across events. The pre-wheel engine is preserved verbatim in
//! [`baseline`](crate::baseline) as the differential-testing reference and
//! bench baseline; `tests/prop_wheel.rs` drives both engines with random
//! event streams and requires event-for-event identical delivery.
//!
//! The engine is intentionally minimal: components, wiring, and message
//! typing live in the crates that model the testbed. Keeping the kernel
//! generic lets every substrate crate unit-test its state machines against a
//! tiny ad-hoc `World` without dragging in the full testbed.

use crate::time::Time;
use crate::wheel::TimingWheel;

/// The environment a simulation runs: receives each delivered message and
/// schedules follow-up work.
pub trait World {
    /// The message type carried by events.
    type Msg;

    /// Deliver one message at simulated instant `now`.
    fn deliver(&mut self, now: Time, msg: Self::Msg, sched: &mut Scheduler<Self::Msg>);
}

/// Handle through which a [`World`] schedules future events while one is
/// being delivered. Scheduling is relative (`after`) or absolute (`at`);
/// absolute times in the past are clamped to `now` rather than rejected,
/// matching the "can't happen before it is noticed" semantics of hardware
/// signals crossing clock domains.
pub struct Scheduler<M> {
    now: Time,
    staged: Vec<(Time, M)>,
}

impl<M> Scheduler<M> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `msg` to be delivered `delay` after now.
    #[inline]
    pub fn after(&mut self, delay: Time, msg: M) {
        self.staged.push((self.now + delay, msg));
    }

    /// Schedule `msg` at absolute instant `at` (clamped to now).
    #[inline]
    pub fn at(&mut self, at: Time, msg: M) {
        self.staged.push((at.max(self.now), msg));
    }

    /// Schedule `msg` for delivery at the current instant, after all other
    /// events already staged or queued for this instant.
    #[inline]
    pub fn now_msg(&mut self, msg: M) {
        self.staged.push((self.now, msg));
    }

    /// Build a scheduler around a recycled staging buffer (empty, but with
    /// capacity from previous deliveries). Shared with the baseline engine.
    #[inline]
    pub(crate) fn with_buffer(now: Time, staged: Vec<(Time, M)>) -> Self {
        debug_assert!(staged.is_empty());
        Scheduler { now, staged }
    }

    /// Surrender the staging buffer for draining and recycling.
    #[inline]
    pub(crate) fn into_buffer(self) -> Vec<(Time, M)> {
        self.staged
    }
}

/// Outcome of [`Simulation::run`]: why the event loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Idle,
    /// The time horizon was reached with events still pending.
    Horizon,
    /// The event budget was exhausted — almost always a livelock in the
    /// modeled system (e.g. a polling loop that never backs off).
    EventBudget,
}

/// A boxed delivery observer: called with each event's timestamp and a
/// shared view of its message just before `World::deliver`. `Send` so a
/// hooked simulation can run as a shard on a worker thread (see
/// [`crate::shard`]).
pub type DeliveryHook<M> = Box<dyn FnMut(Time, &M) + Send>;

/// A discrete-event simulation over world `W`.
pub struct Simulation<W: World> {
    /// The modeled system; public so the harness can inspect state between
    /// runs and inject stimulus.
    pub world: W,
    queue: TimingWheel<W::Msg>,
    now: Time,
    delivered: u64,
    hook: Option<DeliveryHook<W::Msg>>,
    /// Recycled staging buffer handed to the [`Scheduler`] each delivery.
    scratch: Vec<(Time, W::Msg)>,
}

impl<W: World> Simulation<W> {
    /// Create a simulation at time zero with an empty queue.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            queue: TimingWheel::new(),
            now: Time::ZERO,
            delivered: 0,
            hook: None,
            scratch: Vec::new(),
        }
    }

    /// Install an observer invoked immediately before every delivery with
    /// the event's timestamp and a shared view of its message — the seam
    /// tracing harnesses use to anchor their clock and describe events
    /// without the engine knowing anything about tracing. Pass `None` to
    /// remove. The hook cannot mutate the world or the queue, so it cannot
    /// change simulation behavior.
    pub fn set_delivery_hook(&mut self, hook: Option<DeliveryHook<W::Msg>>) {
        self.hook = hook;
    }

    /// Current simulated time (the timestamp of the last delivered event).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events delivered so far.
    #[inline]
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events currently pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Timestamp of the earliest pending event, or `None` when idle.
    ///
    /// Takes `&mut self` because the exact peek may cascade lower wheel
    /// levels to locate the minimum; the queue's contents are unchanged.
    /// This is the lower-bound-timestamp a sharded coordinator reads
    /// during its window exchange (see [`crate::shard`]).
    #[inline]
    pub fn next_event_at(&mut self) -> Option<Time> {
        self.queue.next_at()
    }

    /// Schedule a message from outside the event loop (initial stimulus,
    /// or new stimulus between [`run`](Self::run) calls).
    pub fn schedule(&mut self, delay: Time, msg: W::Msg) {
        self.schedule_at(self.now + delay, msg);
    }

    /// Schedule at an absolute instant (clamped to now).
    pub fn schedule_at(&mut self, at: Time, msg: W::Msg) {
        self.queue.insert(at.max(self.now), msg);
    }

    /// Deliver the single earliest event. Returns `false` if the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some((at, msg)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "event queue went backwards");
        // Fire any metrics sample boundaries that lie strictly before
        // this event, so a sample at instant `s` observes exactly the
        // state left by all events with `t <= s`. Sampling is pure
        // observation — it cannot schedule, reorder, or perturb events —
        // and with no session installed this is one thread-local load.
        if vf_metrics::sample_pending(at.as_ps()) {
            self.publish_metrics();
            vf_metrics::sample_before(at.as_ps());
        }
        self.now = at;
        if let Some(hook) = self.hook.as_mut() {
            hook(self.now, &msg);
        }
        let mut sched = Scheduler::with_buffer(self.now, std::mem::take(&mut self.scratch));
        self.world.deliver(self.now, msg, &mut sched);
        self.delivered += 1;
        let mut staged = sched.into_buffer();
        for (at, msg) in staged.drain(..) {
            // Staged times are already >= now: `after`/`now_msg` add to it
            // and `at` clamps when staging.
            self.queue.insert(at, msg);
        }
        self.scratch = staged;
        true
    }

    /// Run until the queue drains, `horizon` is passed, or `max_events`
    /// deliveries have been made.
    pub fn run(&mut self, horizon: Time, max_events: u64) -> RunOutcome {
        // Saturate: `run_to_idle` passes a budget of `u64::MAX / 2`, which
        // would overflow here once enough events have been delivered across
        // repeated runs of a long-lived simulation.
        let budget_end = self.delivered.saturating_add(max_events);
        if horizon == Time::MAX {
            // Sweep hot path: no event can lie beyond `Time::MAX`, so the
            // horizon check can never fire and the exact `next_at()` peek
            // (which walks a slot chain to find the minimum) is pure
            // overhead — an emptiness test is enough.
            loop {
                if self.queue.is_empty() {
                    return RunOutcome::Idle;
                }
                if self.delivered >= budget_end {
                    return RunOutcome::EventBudget;
                }
                self.step();
            }
        }
        loop {
            // Peek via the chain-walk-free window first; the exact peek is
            // only needed when the horizon falls inside the window of the
            // slot holding the next event.
            match self.queue.next_window() {
                None => return RunOutcome::Idle,
                Some((lo, _)) if lo > horizon => return RunOutcome::Horizon,
                Some((_, hi)) if hi > horizon => {
                    let at = self.queue.next_at().expect("window implies non-empty");
                    if at > horizon {
                        return RunOutcome::Horizon;
                    }
                }
                Some(_) => {}
            }
            if self.delivered >= budget_end {
                return RunOutcome::EventBudget;
            }
            self.step();
        }
    }

    /// Run until the queue drains (with a generous livelock guard).
    pub fn run_to_idle(&mut self) -> RunOutcome {
        self.run(Time::MAX, u64::MAX / 2)
    }

    /// Publish the engine/wheel gauges into the ambient metrics session:
    /// pending-event depth, slab/freelist/overflow occupancy, and the
    /// cascade and delivery totals. Called automatically just before
    /// each batch of sample boundaries fires (the wheel cannot change
    /// between boundaries with no events in between); harnesses may
    /// also call it before an explicit end-of-run
    /// [`vf_metrics::sample_at`].
    pub fn publish_metrics(&self) {
        vf_metrics::gauge_set("sim.wheel.pending", 0, self.queue.len() as i64);
        vf_metrics::gauge_set("sim.wheel.slab", 0, self.queue.slab_len() as i64);
        vf_metrics::gauge_set("sim.wheel.freelist", 0, self.queue.freelist_len() as i64);
        vf_metrics::gauge_set("sim.wheel.overflow", 0, self.queue.overflow_len() as i64);
        vf_metrics::counter_set_total("sim.wheel.cascades", 0, self.queue.cascades());
        vf_metrics::counter_set_total("sim.events.delivered", 0, self.delivered);
    }

    /// Run and require the queue to drain: like [`run`](Self::run), but
    /// panics (naming `what` wedged) if the loop stops on the horizon or
    /// the event budget instead of going [`RunOutcome::Idle`]. The shared
    /// epilogue of every harness that expects its workload to complete.
    pub fn run_expect_idle(&mut self, horizon: Time, max_events: u64, what: &str) {
        let outcome = self.run(horizon, max_events);
        assert_eq!(outcome, RunOutcome::Idle, "{what} wedged: {outcome:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy world: echoes each integer message `n` as `n-1` after 10 ns,
    /// recording the delivery order.
    struct Countdown {
        log: Vec<(Time, u32)>,
    }

    impl World for Countdown {
        type Msg = u32;
        fn deliver(&mut self, now: Time, msg: u32, sched: &mut Scheduler<u32>) {
            self.log.push((now, msg));
            if msg > 0 {
                sched.after(Time::from_ns(10), msg - 1);
            }
        }
    }

    #[test]
    fn countdown_runs_to_idle() {
        let mut sim = Simulation::new(Countdown { log: Vec::new() });
        sim.schedule(Time::from_ns(5), 3);
        assert_eq!(sim.run_to_idle(), RunOutcome::Idle);
        assert_eq!(
            sim.world.log,
            vec![
                (Time::from_ns(5), 3),
                (Time::from_ns(15), 2),
                (Time::from_ns(25), 1),
                (Time::from_ns(35), 0),
            ]
        );
        assert_eq!(sim.events_delivered(), 4);
        assert_eq!(sim.now(), Time::from_ns(35));
    }

    #[test]
    fn fifo_tie_break_is_schedule_order() {
        struct Recorder(Vec<u32>);
        impl World for Recorder {
            type Msg = u32;
            fn deliver(&mut self, _: Time, msg: u32, _: &mut Scheduler<u32>) {
                self.0.push(msg);
            }
        }
        let mut sim = Simulation::new(Recorder(Vec::new()));
        for i in 0..100 {
            sim.schedule(Time::from_ns(42), i);
        }
        sim.run_to_idle();
        assert_eq!(sim.world.0, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_tie_break_among_staged_events() {
        // Events staged by `deliver` at the same instant must come out in
        // the order the world staged them, interleaving correctly with
        // events already queued for that instant.
        struct Fanout {
            log: Vec<u32>,
        }
        impl World for Fanout {
            type Msg = u32;
            fn deliver(&mut self, _: Time, msg: u32, sched: &mut Scheduler<u32>) {
                self.log.push(msg);
                if msg == 0 {
                    // Mixed staging APIs, all landing at the same instant
                    // (deliveries happen at 20 ns: after(0) == at(20) ==
                    // now_msg): expect staging order 1, 2, 3.
                    sched.after(Time::ZERO, 1);
                    sched.at(Time::from_ns(20), 2);
                    sched.now_msg(3);
                }
            }
        }
        let mut sim = Simulation::new(Fanout { log: Vec::new() });
        sim.schedule(Time::from_ns(20), 0);
        // Pre-queued event at the same instant, scheduled before delivery:
        // FIFO puts it after msg 0 but before anything staged by it.
        sim.schedule(Time::from_ns(20), 9);
        sim.run_to_idle();
        assert_eq!(sim.world.log, vec![0, 9, 1, 2, 3]);
    }

    #[test]
    fn fifo_tie_break_across_generations() {
        // Same-instant events staged by *different* deliveries interleave
        // in global staging order, not grouped by the staging event.
        struct TwoStage {
            log: Vec<u32>,
        }
        impl World for TwoStage {
            type Msg = u32;
            fn deliver(&mut self, _: Time, msg: u32, sched: &mut Scheduler<u32>) {
                self.log.push(msg);
                if msg < 2 {
                    sched.after(Time::from_ns(10), 10 + msg);
                    sched.after(Time::from_ns(10), 20 + msg);
                }
            }
        }
        let mut sim = Simulation::new(TwoStage { log: Vec::new() });
        sim.schedule(Time::ZERO, 0);
        sim.schedule(Time::ZERO, 1);
        sim.run_to_idle();
        // At t=10ns: msg 0 staged (10, 20) first, then msg 1 staged (11, 21).
        assert_eq!(sim.world.log, vec![0, 1, 10, 20, 11, 21]);
    }

    #[test]
    fn delivery_hook_observes_every_event_in_order() {
        use std::sync::{Arc, Mutex};
        let seen: Arc<Mutex<Vec<(Time, u32)>>> = Arc::default();
        let mut sim = Simulation::new(Countdown { log: Vec::new() });
        let seen2 = Arc::clone(&seen);
        sim.set_delivery_hook(Some(Box::new(move |t, msg: &u32| {
            seen2.lock().unwrap().push((t, *msg));
        })));
        sim.schedule(Time::from_ns(5), 2);
        sim.run_to_idle();
        assert_eq!(*seen.lock().unwrap(), sim.world.log);
        // Removing the hook stops observation without disturbing the run.
        sim.set_delivery_hook(None);
        sim.schedule(Time::from_ns(1), 0);
        sim.run_to_idle();
        assert_eq!(seen.lock().unwrap().len(), 3);
        assert_eq!(sim.world.log.len(), 4);
    }

    #[test]
    fn horizon_stops_before_future_events() {
        let mut sim = Simulation::new(Countdown { log: Vec::new() });
        sim.schedule(Time::from_ns(5), 10);
        let outcome = sim.run(Time::from_ns(26), u64::MAX / 2);
        assert_eq!(outcome, RunOutcome::Horizon);
        // Events at 5, 15, 25 delivered; 35 pending.
        assert_eq!(sim.world.log.len(), 3);
        assert_eq!(sim.pending(), 1);
        // Resuming picks up where it left off.
        assert_eq!(sim.run_to_idle(), RunOutcome::Idle);
        assert_eq!(sim.world.log.len(), 11);
    }

    #[test]
    fn event_budget_catches_livelock() {
        /// Pathological world that reschedules itself at the same instant.
        struct Livelock;
        impl World for Livelock {
            type Msg = ();
            fn deliver(&mut self, _: Time, _: (), sched: &mut Scheduler<()>) {
                sched.now_msg(());
            }
        }
        let mut sim = Simulation::new(Livelock);
        sim.schedule(Time::ZERO, ());
        assert_eq!(sim.run(Time::MAX, 1000), RunOutcome::EventBudget);
        assert_eq!(sim.events_delivered(), 1000);
        assert_eq!(sim.now(), Time::ZERO);
    }

    #[test]
    fn event_budget_saturates_across_repeated_runs() {
        let mut sim = Simulation::new(Countdown { log: Vec::new() });
        sim.schedule(Time::from_ns(5), 3);
        assert_eq!(sim.run(Time::MAX, u64::MAX), RunOutcome::Idle);
        // Regression: with events already delivered, a near-max budget used
        // to compute `delivered + max_events` and overflow in debug builds.
        sim.schedule(Time::from_ns(5), 3);
        assert_eq!(sim.run(Time::MAX, u64::MAX), RunOutcome::Idle);
        assert_eq!(sim.events_delivered(), 8);
    }

    #[test]
    fn past_absolute_times_clamp_to_now() {
        struct ClampWorld {
            times: Vec<Time>,
        }
        impl World for ClampWorld {
            type Msg = bool;
            fn deliver(&mut self, now: Time, first: bool, sched: &mut Scheduler<bool>) {
                self.times.push(now);
                if first {
                    // Try to schedule in the past; must clamp to `now`.
                    sched.at(Time::ZERO, false);
                }
            }
        }
        let mut sim = Simulation::new(ClampWorld { times: Vec::new() });
        sim.schedule(Time::from_ns(100), true);
        sim.run_to_idle();
        assert_eq!(
            sim.world.times,
            vec![Time::from_ns(100), Time::from_ns(100)]
        );
    }

    #[test]
    fn run_expect_idle_passes_when_drained() {
        let mut sim = Simulation::new(Countdown { log: Vec::new() });
        sim.schedule(Time::from_ns(5), 3);
        sim.run_expect_idle(Time::MAX, u64::MAX / 2, "countdown");
        assert_eq!(sim.events_delivered(), 4);
    }

    #[test]
    #[should_panic(expected = "countdown wedged")]
    fn run_expect_idle_panics_on_horizon() {
        let mut sim = Simulation::new(Countdown { log: Vec::new() });
        sim.schedule(Time::from_ns(5), 10);
        sim.run_expect_idle(Time::from_ns(26), u64::MAX / 2, "countdown");
    }

    /// The sampler fires between events, never as an event: delivery
    /// order and timestamps are identical with and without a metrics
    /// session, while the wheel gauges show live occupancy draining to
    /// zero with every node back on the freelist.
    #[test]
    fn metrics_sampling_observes_without_perturbing() {
        let run = |metered: bool| {
            if metered {
                vf_metrics::install(vf_metrics::MetricsConfig {
                    interval_ps: 10_000, // 10 ns, dense relative to the events
                    ..Default::default()
                });
            }
            let mut sim = Simulation::new(Countdown { log: Vec::new() });
            for i in 0..10 {
                sim.schedule(Time::from_ns(5 + i), 20);
            }
            sim.run_to_idle();
            sim.publish_metrics();
            vf_metrics::sample_at(sim.now().as_ps());
            (sim.world.log, vf_metrics::finish())
        };
        let (plain, empty) = run(false);
        let (metered, report) = run(true);
        assert_eq!(plain, metered, "sampling perturbed delivery");
        assert!(empty.instruments.is_empty());
        assert!(report.samples > 10);
        let pending = report.get("sim.wheel.pending", 0).unwrap();
        assert!(pending.series.iter().any(|&(_, v)| v > 0));
        assert_eq!(pending.last, 0, "queue did not drain");
        assert_eq!(
            report.get("sim.wheel.freelist", 0).unwrap().last,
            report.get("sim.wheel.slab", 0).unwrap().last,
            "wheel leaked slab nodes"
        );
        assert!(report.counter_total("sim.events.delivered") >= 200);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn stimulus_between_runs() {
        let mut sim = Simulation::new(Countdown { log: Vec::new() });
        sim.schedule(Time::from_ns(1), 0);
        sim.run_to_idle();
        sim.schedule(Time::from_ns(1), 1);
        sim.run_to_idle();
        assert_eq!(sim.world.log.len(), 3);
        // Second stimulus lands relative to the time the first run ended.
        assert_eq!(sim.world.log[1].0, Time::from_ns(2));
    }
}
