//! Simulation time base.
//!
//! All simulated clocks in the workspace share a single time base: an
//! unsigned 64-bit count of **picoseconds** since simulation start. At
//! picosecond resolution a `u64` covers ~213 days of simulated time, far
//! beyond any experiment in this repository (the largest runs are a few
//! simulated seconds).
//!
//! Picoseconds were chosen over nanoseconds so that the two clock domains
//! of the paper's testbed divide evenly:
//!
//! * the host's `CLOCK_MONOTONIC` with 1 ns resolution, and
//! * the FPGA fabric clock at 125 MHz (8 ns per cycle), which drives the
//!   hardware performance counters.
//!
//! PCIe symbol times at Gen2 (5 GT/s → 200 ps/bit) are also exact in this
//! base, so link serialization delays accumulate without rounding drift.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant or duration on the global simulation clock, in picoseconds.
///
/// `Time` is used for both absolute instants and durations; the arithmetic
/// provided is the subset that is meaningful for either use. Subtraction is
/// checked in debug builds (simulated time never runs backwards).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// One FPGA fabric-clock cycle at 125 MHz, the clock used by the paper's
/// designs and their performance counters.
pub const FPGA_CYCLE: Time = Time::from_ns(8);

impl Time {
    /// The zero instant (simulation start) / the empty duration.
    pub const ZERO: Time = Time(0);
    /// The maximum representable time; used as an "infinitely far" deadline.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * 1_000_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000_000)
    }

    /// Construct from a (non-negative, finite) floating-point nanosecond
    /// count, rounding to the nearest picosecond. Used when converting
    /// sampled cost-model values into simulation time.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns.is_finite() && ns >= 0.0, "invalid duration: {ns} ns");
        Time((ns * 1_000.0).round().max(0.0) as u64)
    }

    /// Construct from floating-point microseconds.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        Self::from_ns_f64(us * 1_000.0)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating), the host clock's view of this time.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Nanoseconds as a float, for statistics.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Microseconds as a float, the unit the paper reports in.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction, for durations that may be measured across
    /// clock-domain quantization and could otherwise underflow by one tick.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// Quantize *down* to a multiple of `tick` — how a free-running hardware
    /// counter clocked at `tick` observes this instant. The paper's FPGA
    /// counters tick at [`FPGA_CYCLE`] (8 ns).
    #[inline]
    pub fn quantize(self, tick: Time) -> Time {
        debug_assert!(tick.0 > 0);
        Time(self.0 / tick.0 * tick.0)
    }

    /// Number of whole `tick` periods contained in this duration.
    #[inline]
    pub fn ticks(self, tick: Time) -> u64 {
        debug_assert!(tick.0 > 0);
        self.0 / tick.0
    }

    /// Scale a duration by a float factor (rounds to nearest picosecond).
    #[inline]
    pub fn scale(self, factor: f64) -> Time {
        debug_assert!(factor.is_finite() && factor >= 0.0);
        Time((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        debug_assert!(self.0 >= rhs.0, "time underflow: {} - {}", self, rhs);
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        debug_assert!(self.0 >= rhs.0);
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Time {
    /// Human-scaled display: picks ns/µs/ms/s so logs stay readable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0")
        } else if ps < 1_000 {
            write!(f, "{ps}ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else if ps < 1_000_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else {
            write!(f, "{:.3}s", ps as f64 / 1e12)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ms(1), Time::from_us(1_000));
        assert_eq!(Time::from_secs(1), Time::from_ms(1_000));
    }

    #[test]
    fn float_round_trip() {
        let t = Time::from_ns_f64(1234.5678);
        assert_eq!(t.as_ps(), 1_234_568);
        assert!((t.as_ns_f64() - 1234.568).abs() < 1e-9);
        assert_eq!(Time::from_us_f64(2.5), Time::from_ns(2500));
    }

    #[test]
    fn fpga_cycle_is_8ns() {
        assert_eq!(FPGA_CYCLE.as_ns(), 8);
        // 125 MHz: 125e6 cycles per second.
        assert_eq!(Time::from_secs(1).ticks(FPGA_CYCLE), 125_000_000);
    }

    #[test]
    fn quantize_rounds_down_to_tick() {
        let t = Time::from_ns(23);
        assert_eq!(t.quantize(FPGA_CYCLE), Time::from_ns(16));
        assert_eq!(Time::from_ns(24).quantize(FPGA_CYCLE), Time::from_ns(24));
        assert_eq!(Time::ZERO.quantize(FPGA_CYCLE), Time::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(4);
        assert_eq!(a + b, Time::from_ns(14));
        assert_eq!(a - b, Time::from_ns(6));
        assert_eq!(a * 3, Time::from_ns(30));
        assert_eq!(a / 2, Time::from_ns(5));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.scale(2.5), Time::from_ns(25));
    }

    #[test]
    fn display_scales() {
        assert_eq!(Time::from_ps(500).to_string(), "500ps");
        assert_eq!(Time::from_ns(500).to_string(), "500.000ns");
        assert_eq!(Time::from_us(3).to_string(), "3.000us");
        assert_eq!(Time::from_ms(7).to_string(), "7.000ms");
        assert_eq!(Time::from_secs(2).to_string(), "2.000s");
        assert_eq!(Time::ZERO.to_string(), "0");
    }

    #[test]
    fn sum_of_durations() {
        let total: Time = [Time::from_ns(1), Time::from_ns(2), Time::from_ns(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Time::from_ns(6));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn sub_underflow_panics_in_debug() {
        let _ = Time::from_ns(1) - Time::from_ns(2);
    }
}
