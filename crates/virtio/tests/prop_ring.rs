//! Property tests on the virtqueue protocol: for arbitrary operation
//! sequences, the ring must conserve descriptors, deliver every chain
//! exactly once, in order, with intact buffer lists.

use proptest::collection::vec;
use proptest::prelude::*;

use vf_virtio::device_queue::DeviceQueue;
use vf_virtio::driver_queue::{BufferSpec, DriverQueue, QueueError};
use vf_virtio::ring::{vring_need_event, VirtqueueLayout};
use vf_virtio::VecMemory;

/// A workload step: add a chain of `readable`/`writable` buffer counts,
/// or let the device complete up to `n` pending chains.
#[derive(Clone, Debug)]
enum Step {
    Add { readable: u8, writable: u8 },
    Complete { n: u8 },
    DriverHarvest,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..4, 0u8..4).prop_map(|(readable, writable)| Step::Add { readable, writable }),
        (1u8..6).prop_map(|n| Step::Complete { n }),
        Just(Step::DriverHarvest),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ring_conserves_descriptors(
        steps in vec(step_strategy(), 1..120),
        size_pow in 2u32..7, // queue sizes 4..64
        event_idx in any::<bool>(),
    ) {
        let size = 1u16 << size_pow;
        let mut mem = VecMemory::new(1 << 20);
        let layout = VirtqueueLayout::contiguous(0x1000, size);
        let mut drv = DriverQueue::new(&mut mem, layout, event_idx);
        let mut dev = DeviceQueue::new(layout, event_idx, false);

        let mut published: Vec<(u16, usize)> = Vec::new(); // (head, len), order log
        let mut dev_seen: Vec<(u16, usize)> = Vec::new();
        let mut inflight: std::collections::HashMap<u16, usize> = Default::default();
        let mut outstanding = 0u16;

        for step in steps {
            match step {
                Step::Add { readable, writable } => {
                    let total = readable as u16 + writable as u16;
                    if total == 0 {
                        prop_assert_eq!(
                            drv.add_chain(&mut mem, &[]).unwrap_err(),
                            QueueError::EmptyChain
                        );
                        continue;
                    }
                    let mut bufs = Vec::new();
                    for i in 0..readable {
                        bufs.push(BufferSpec::readable(0x10_000 + i as u64 * 64, 64));
                    }
                    for i in 0..writable {
                        bufs.push(BufferSpec::writable(0x20_000 + i as u64 * 64, 64));
                    }
                    match drv.add_and_publish(&mut mem, &bufs) {
                        Ok(head) => {
                            published.push((head, bufs.len()));
                            inflight.insert(head, bufs.len());
                            outstanding += total;
                        }
                        Err(QueueError::NoSpace { needed, free }) => {
                            prop_assert!(needed > free);
                            prop_assert_eq!(free, size - outstanding);
                        }
                        Err(e) => prop_assert!(false, "unexpected error {:?}", e),
                    }
                }
                Step::Complete { n } => {
                    for _ in 0..n {
                        match dev.pop_chain(&mem).unwrap() {
                            None => break,
                            Some(chain) => {
                                dev_seen.push((chain.head, chain.bufs.len()));
                                let old = dev.complete(&mut mem, chain.head, 0);
                                let _ = dev.should_interrupt(&mem, old);
                            }
                        }
                    }
                }
                Step::DriverHarvest => {
                    while let Some(used) = drv.pop_used(&mut mem) {
                        // Chain returns its descriptors.
                        let len = inflight
                            .remove(&(used.id as u16))
                            .expect("used id was in flight");
                        outstanding -= len as u16;
                    }
                    prop_assert_eq!(drv.num_free(), size - outstanding);
                }
            }
        }

        // Drain: complete everything, harvest everything.
        while let Some(chain) = dev.pop_chain(&mem).unwrap() {
            dev_seen.push((chain.head, chain.bufs.len()));
            dev.complete(&mut mem, chain.head, 0);
        }
        while drv.pop_used(&mut mem).is_some() {}
        prop_assert_eq!(drv.num_free(), size, "all descriptors must return");

        // The device saw every published chain exactly once, in order,
        // with the right length.
        prop_assert_eq!(dev_seen, published);
    }

    #[test]
    fn chain_buffers_survive_round_trip(
        lens in vec(1u32..2000, 1..8),
        n_writable in 0usize..8,
    ) {
        let mut mem = VecMemory::new(1 << 20);
        let layout = VirtqueueLayout::contiguous(0x1000, 16);
        let mut drv = DriverQueue::new(&mut mem, layout, false);
        let dev = DeviceQueue::new(layout, false, false);
        let n_writable = n_writable.min(lens.len());
        let n_readable = lens.len() - n_writable;
        let bufs: Vec<BufferSpec> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                let addr = 0x40_000 + i as u64 * 0x1000;
                if i < n_readable {
                    BufferSpec::readable(addr, len)
                } else {
                    BufferSpec::writable(addr, len)
                }
            })
            .collect();
        drv.add_and_publish(&mut mem, &bufs).unwrap();
        let (chain, fetches) = dev.resolve_at(&mem, 0).unwrap();
        prop_assert_eq!(fetches, lens.len());
        prop_assert_eq!(chain.bufs.len(), lens.len());
        for (spec, got) in bufs.iter().zip(&chain.bufs) {
            prop_assert_eq!(spec.addr, got.addr);
            prop_assert_eq!(spec.len, got.len);
            prop_assert_eq!(spec.writable, got.writable);
        }
        prop_assert_eq!(
            chain.readable_len() + chain.writable_len(),
            lens.iter().sum::<u32>()
        );
    }

    #[test]
    fn need_event_matches_reference(event in any::<u16>(), new in any::<u16>(), old in any::<u16>()) {
        // Reference: the notification fires iff `event` lies in the
        // half-open wrap-aware interval [old, new).
        let fired = vring_need_event(event, new, old);
        let crossed = {
            let dist_new = new.wrapping_sub(old);
            let dist_event = event.wrapping_sub(old);
            dist_event < dist_new
        };
        prop_assert_eq!(fired, crossed);
    }

    #[test]
    fn layout_structures_never_overlap(size_pow in 0u32..15, base_pages in 0u64..64) {
        let size = 1u16 << size_pow;
        let base = base_pages * 4096;
        let l = VirtqueueLayout::contiguous(base, size);
        let desc_end = l.desc + size as u64 * 16;
        let avail_end = l.avail + VirtqueueLayout::avail_bytes(size);
        let used_end = l.used + VirtqueueLayout::used_bytes(size);
        prop_assert!(l.desc >= base);
        prop_assert!(l.avail >= desc_end);
        prop_assert!(l.used >= avail_end);
        prop_assert_eq!(l.total_bytes(), used_end - l.desc);
        prop_assert_eq!(l.desc % 16, 0);
        prop_assert_eq!(l.avail % 2, 0);
        prop_assert_eq!(l.used % 4, 0);
    }
}

mod packed_props {
    use proptest::collection::vec;
    use proptest::prelude::*;
    use vf_virtio::packed::{PackedBuffer, PackedDeviceQueue, PackedDriverQueue};
    use vf_virtio::VecMemory;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// For arbitrary chain-length sequences, the packed ring delivers
        /// every chain once, in order, and conserves slots — including
        /// across many wrap-counter flips.
        #[test]
        fn packed_ring_conserves_slots(
            chains in vec(1usize..5, 1..80),
            size_pow in 2u32..6,
        ) {
            let size = 1u16 << size_pow;
            let mut mem = VecMemory::new(1 << 20);
            let mut drv = PackedDriverQueue::new(0x1000, size);
            let mut dev = PackedDeviceQueue::new(0x1000, size);
            let mut queued: std::collections::VecDeque<(u16, usize)> = Default::default();
            for (k, &n) in chains.iter().enumerate() {
                let bufs: Vec<PackedBuffer> = (0..n)
                    .map(|i| PackedBuffer {
                        addr: 0x10_000 + (k * 8 + i) as u64 * 64,
                        len: 64,
                        writable: i == n - 1,
                    })
                    .collect();
                match drv.add(&mut mem, &bufs) {
                    Some(id) => queued.push_back((id, n)),
                    None => {
                        // Ring full: drain chains end-to-end until the
                        // add fits.
                        loop {
                            let chain =
                                dev.try_take(&mem).expect("full ring has pending work");
                            dev.complete(&mut mem, &chain, 7);
                            let used = drv.pop_used(&mem).unwrap();
                            let (id, len) = queued.pop_front().unwrap();
                            prop_assert_eq!(used.id, id);
                            prop_assert_eq!(chain.bufs.len(), len);
                            if let Some(id2) = drv.add(&mut mem, &bufs) {
                                queued.push_back((id2, n));
                                break;
                            }
                        }
                    }
                }
            }
            // Drain the rest in order.
            while let Some((id, len)) = queued.pop_front() {
                let chain = dev.try_take(&mem).expect("pending chain");
                prop_assert_eq!(chain.id, id);
                prop_assert_eq!(chain.bufs.len(), len);
                prop_assert!(chain.bufs.last().unwrap().2, "last buffer writable");
                dev.complete(&mut mem, &chain, 1);
                prop_assert_eq!(drv.pop_used(&mem).unwrap().id, id);
            }
            prop_assert_eq!(drv.num_free(), size);
            prop_assert!(dev.try_take(&mem).is_none());
        }
    }
}

mod layout_equivalence {
    use proptest::collection::vec;
    use proptest::prelude::*;
    use vf_virtio::device_queue::DeviceQueue;
    use vf_virtio::driver_queue::{BufferSpec, DriverQueue};
    use vf_virtio::packed::{PackedBuffer, PackedDeviceQueue, PackedDriverQueue};
    use vf_virtio::ring::VirtqueueLayout;
    use vf_virtio::VecMemory;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Split and packed layouts are behaviourally equivalent for any
        /// in-window workload: the same sequence of chains comes out in
        /// the same order with the same buffer lists on both.
        #[test]
        fn split_and_packed_deliver_identically(
            chains in vec((1usize..4, 0usize..3), 1..40),
        ) {
            let size = 64u16;
            // Split setup.
            let mut smem = VecMemory::new(1 << 20);
            let layout = VirtqueueLayout::contiguous(0x1000, size);
            let mut sdrv = DriverQueue::new(&mut smem, layout, false);
            let mut sdev = DeviceQueue::new(layout, false, false);
            // Packed setup.
            let mut pmem = VecMemory::new(1 << 20);
            let mut pdrv = PackedDriverQueue::new(0x1000, size);
            let mut pdev = PackedDeviceQueue::new(0x1000, size);

            for (k, &(readable, writable)) in chains.iter().enumerate() {
                let mut sbufs = Vec::new();
                let mut pbufs = Vec::new();
                for i in 0..readable + writable {
                    let addr = 0x10_000 + (k * 8 + i) as u64 * 256;
                    let len = 32 + i as u32;
                    let w = i >= readable;
                    sbufs.push(if w {
                        BufferSpec::writable(addr, len)
                    } else {
                        BufferSpec::readable(addr, len)
                    });
                    pbufs.push(PackedBuffer {
                        addr,
                        len,
                        writable: w,
                    });
                }
                sdrv.add_and_publish(&mut smem, &sbufs).unwrap();
                pdrv.add(&mut pmem, &pbufs).unwrap();

                let schain = sdev.pop_chain(&smem).unwrap().unwrap();
                let pchain = pdev.try_take(&pmem).unwrap();
                // Identical buffer lists, element by element.
                prop_assert_eq!(schain.bufs.len(), pchain.bufs.len());
                for (sb, pb) in schain.bufs.iter().zip(&pchain.bufs) {
                    prop_assert_eq!(sb.addr, pb.0);
                    prop_assert_eq!(sb.len, pb.1);
                    prop_assert_eq!(sb.writable, pb.2);
                }
                // Complete on both; both drivers observe it.
                sdev.complete(&mut smem, schain.head, 5);
                pdev.complete(&mut pmem, &pchain, 5);
                prop_assert_eq!(sdrv.pop_used(&mut smem).unwrap().len, 5);
                prop_assert_eq!(pdrv.pop_used(&pmem).unwrap().len, 5);
            }
        }
    }
}
