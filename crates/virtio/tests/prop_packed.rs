//! Property tests for the packed-virtqueue **wrap-around machinery**:
//! the AVAIL/USED ownership bits must agree with both sides' wrap
//! counters across arbitrarily many ring wraps, and slot accounting
//! must survive partial drains that stop at any point in the ring.
//!
//! The split-ring properties live in `prop_ring.rs`; this file is the
//! packed layout's §2.8.1 state machine exercised adversarially.

use proptest::collection::vec;
use proptest::prelude::*;

use vf_virtio::packed::{
    PackedBuffer, PackedDesc, PackedDeviceQueue, PackedDriverQueue, PACKED_F_AVAIL, PACKED_F_USED,
};
use vf_virtio::VecMemory;

const RING: u64 = 0x1000;

fn bufs(chain_len: usize, tag: usize) -> Vec<PackedBuffer> {
    (0..chain_len)
        .map(|i| PackedBuffer {
            addr: 0x10_000 + (tag * 8 + i) as u64 * 64,
            len: 64,
            writable: i + 1 == chain_len,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Serial round trips through a tiny ring: after every transfer the
    /// head descriptor's raw flag word must encode exactly the ownership
    /// state both wrap counters imply — available to the device before
    /// completion, used from the driver's view after, never both.
    #[test]
    fn ownership_bits_track_wrap_counters(
        transfers in 8usize..64,
        size_pow in 1u32..4, // sizes 2..8: many wraps
        chain_len in 1usize..3,
    ) {
        let size = 1u16 << size_pow;
        prop_assume!(chain_len as u16 <= size);
        let mut mem = VecMemory::new(1 << 20);
        let mut drv = PackedDriverQueue::new(RING, size);
        let mut dev = PackedDeviceQueue::new(RING, size);

        // Both sides start at slot 0 with wrap = true; track our own
        // reference copy of the device's expected position.
        let mut slot = 0u16;
        let mut wrap = true;
        for t in 0..transfers {
            let id = drv.add(&mut mem, &bufs(chain_len, t)).unwrap();
            // The head descriptor is available under the current wrap…
            let head = PackedDesc::read_at(&mem, RING, slot);
            prop_assert!(head.is_avail(wrap), "t{} head flags {:#06x} wrap {}", t, head.flags, wrap);
            prop_assert!(!head.is_used(wrap), "avail and used are exclusive");
            // …and its raw bits match the §2.8.1 encoding:
            // AVAIL = wrap, USED = !wrap.
            prop_assert_eq!(head.flags & PACKED_F_AVAIL != 0, wrap);
            prop_assert_eq!(head.flags & PACKED_F_USED != 0, !wrap);

            let chain = dev.try_take(&mem).unwrap();
            prop_assert_eq!(chain.id, id);
            prop_assert_eq!(chain.start_slot, slot);
            prop_assert_eq!(chain.wrap, wrap);
            dev.complete(&mut mem, &chain, t as u32);

            // After completion the same slot reads as used for the
            // driver's wrap — AVAIL == USED == wrap.
            let done = PackedDesc::read_at(&mem, RING, slot);
            prop_assert!(done.is_used(wrap));
            prop_assert!(!done.is_avail(wrap));
            prop_assert_eq!(done.flags & PACKED_F_AVAIL != 0, wrap);
            prop_assert_eq!(done.flags & PACKED_F_USED != 0, wrap);

            let used = drv.pop_used(&mem).unwrap();
            prop_assert_eq!(used.id, id);
            prop_assert_eq!(used.len, t as u32);
            prop_assert_eq!(drv.num_free(), size);

            // Advance the reference position by the chain length,
            // flipping the reference wrap counter at the ring boundary.
            for _ in 0..chain_len {
                slot += 1;
                if slot == size {
                    slot = 0;
                    wrap = !wrap;
                }
            }
        }
        // Nothing is pending once the ledger is square.
        prop_assert!(dev.try_take(&mem).is_none());
        prop_assert!(drv.pop_used(&mem).is_none());
    }

    /// A descriptor from the *previous* lap must never look available or
    /// used again once the counters have flipped: for every (flags,
    /// wrap) combination, at most one of is_avail/is_used holds, and
    /// flipping the wrap swaps which one.
    #[test]
    fn flag_predicates_are_exclusive_and_wrap_sensitive(flags in any::<u16>()) {
        let d = PackedDesc { addr: 0, len: 0, id: 0, flags };
        for wrap in [false, true] {
            prop_assert!(
                !(d.is_avail(wrap) && d.is_used(wrap)),
                "flags {:#06x} wrap {}: avail and used both set",
                flags, wrap
            );
        }
        // AVAIL != USED (a fresh avail descriptor) is visible under
        // exactly one wrap value; AVAIL == USED (a completed one) is
        // used under exactly one wrap value.
        let avail = flags & PACKED_F_AVAIL != 0;
        let used = flags & PACKED_F_USED != 0;
        if avail != used {
            prop_assert!(d.is_avail(avail) && !d.is_avail(!avail));
            prop_assert!(!d.is_used(avail) && !d.is_used(!avail));
        } else {
            prop_assert!(d.is_used(avail) && !d.is_used(!avail));
            prop_assert!(!d.is_avail(avail) && !d.is_avail(!avail));
        }
    }

    /// Pipelined workload with arbitrary interleaving: the driver's
    /// used-side wrap counter must stay in lockstep with the device's
    /// take-side counter even when completions are harvested lazily, in
    /// batches, across ring wraps.
    #[test]
    fn lazy_harvest_survives_wraps(
        ops in vec((1usize..4, 0usize..5), 4..60),
        size_pow in 2u32..5, // sizes 4..16
    ) {
        let size = 1u16 << size_pow;
        let mut mem = VecMemory::new(1 << 20);
        let mut drv = PackedDriverQueue::new(RING, size);
        let mut dev = PackedDeviceQueue::new(RING, size);

        // In-flight ledger: (id, chain_len) in publish order.
        let mut inflight: std::collections::VecDeque<(u16, usize)> = Default::default();
        let mut completed: std::collections::VecDeque<(u16, u32)> = Default::default();
        let mut seq = 0u32;

        for (k, &(chain_len, harvest)) in ops.iter().enumerate() {
            let chain_len = chain_len.min(size as usize);
            // Add if there is room; otherwise force a full drain first
            // (the adversarial case: drain begins mid-ring, mid-wrap).
            if drv.add(&mut mem, &bufs(chain_len, k)).is_none() {
                while let Some(chain) = dev.try_take(&mem) {
                    dev.complete(&mut mem, &chain, seq);
                    completed.push_back((chain.id, seq));
                    seq += 1;
                }
                while let Some(u) = drv.pop_used(&mem) {
                    let (id, want) = completed.pop_front().unwrap();
                    prop_assert_eq!(u.id, id);
                    prop_assert_eq!(u.len, want);
                    let (qid, _) = inflight.pop_front().unwrap();
                    prop_assert_eq!(id, qid);
                }
                prop_assert_eq!(drv.num_free(), size);
                let id = drv.add(&mut mem, &bufs(chain_len, k)).unwrap();
                inflight.push_back((id, chain_len));
            } else {
                // The id the driver handed out is deterministic; re-read
                // it from the device side below.
                let chain = dev.try_take(&mem).unwrap();
                prop_assert_eq!(chain.bufs.len(), chain_len);
                inflight.push_back((chain.id, chain_len));
                dev.complete(&mut mem, &chain, seq);
                completed.push_back((chain.id, seq));
                seq += 1;
            }
            // Device keeps consuming anything else pending.
            while let Some(chain) = dev.try_take(&mem) {
                dev.complete(&mut mem, &chain, seq);
                completed.push_back((chain.id, seq));
                seq += 1;
            }
            // Driver harvests at most `harvest` completions — possibly
            // zero, leaving used entries to be found a lap later.
            for _ in 0..harvest {
                match drv.pop_used(&mem) {
                    None => break,
                    Some(u) => {
                        let (id, want) = completed.pop_front().unwrap();
                        prop_assert_eq!(u.id, id);
                        prop_assert_eq!(u.len, want);
                        let (qid, _) = inflight.pop_front().unwrap();
                        prop_assert_eq!(id, qid);
                    }
                }
            }
        }

        // Final drain: everything still in flight comes back in order.
        while let Some(chain) = dev.try_take(&mem) {
            dev.complete(&mut mem, &chain, seq);
            completed.push_back((chain.id, seq));
            seq += 1;
        }
        while let Some(u) = drv.pop_used(&mem) {
            let (id, want) = completed.pop_front().unwrap();
            prop_assert_eq!(u.id, id);
            prop_assert_eq!(u.len, want);
            let (qid, _) = inflight.pop_front().unwrap();
            prop_assert_eq!(id, qid);
        }
        prop_assert!(inflight.is_empty(), "every chain must complete");
        prop_assert!(completed.is_empty());
        prop_assert_eq!(drv.num_free(), size, "slots conserved across wraps");
    }

    /// The free-slot ledger is exact at every step: adds debit by chain
    /// length, harvests credit by chain length, and a full ring rejects
    /// the next add without corrupting state.
    #[test]
    fn num_free_is_an_exact_ledger(
        chain_lens in vec(1usize..4, 1..40),
        size_pow in 2u32..5,
    ) {
        let size = 1u16 << size_pow;
        let mut mem = VecMemory::new(1 << 20);
        let mut drv = PackedDriverQueue::new(RING, size);
        let mut dev = PackedDeviceQueue::new(RING, size);
        let mut outstanding: u16 = 0;
        let mut pending: std::collections::VecDeque<usize> = Default::default();

        for (k, &n) in chain_lens.iter().enumerate() {
            let n16 = n as u16;
            match drv.add(&mut mem, &bufs(n, k)) {
                Some(_) => {
                    outstanding += n16;
                    pending.push_back(n);
                }
                None => {
                    // Must be a genuine capacity failure…
                    prop_assert!(n16 > size - outstanding);
                    // …and rejection must not have consumed anything.
                    prop_assert_eq!(drv.num_free(), size - outstanding);
                    // Recover one chain end-to-end and retry: now it fits
                    // iff the ledger says so.
                    let chain = dev.try_take(&mem).expect("outstanding work");
                    dev.complete(&mut mem, &chain, 0);
                    drv.pop_used(&mem).unwrap();
                    outstanding -= pending.pop_front().unwrap() as u16;
                    if n16 <= size - outstanding {
                        prop_assert!(drv.add(&mut mem, &bufs(n, k)).is_some());
                        outstanding += n16;
                        pending.push_back(n);
                    }
                }
            }
            prop_assert_eq!(drv.num_free(), size - outstanding);
        }
    }
}
