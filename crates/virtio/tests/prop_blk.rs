//! Property tests on the virtio-blk request model: header encode/parse
//! must round-trip for every request shape, and the chain walk +
//! `MemDisk` execution must hold its invariants — status byte always
//! written, `written` count consistent, guest-controlled sectors and
//! segment lists never panicking — for arbitrary inputs.

use proptest::collection::vec;
use proptest::prelude::*;

use vf_virtio::block::{blk_status, BlkReqType, BlkRequest, MemDisk, SECTOR_SIZE};
use vf_virtio::device_queue::{Chain, ChainBuf};
use vf_virtio::{GuestMemory, VecMemory};

fn chain_of(bufs: &[(u64, u32, bool)]) -> Chain {
    Chain {
        head: 0,
        bufs: bufs
            .iter()
            .map(|&(addr, len, writable)| ChainBuf {
                addr,
                len,
                writable,
            })
            .collect(),
    }
}

fn req_type_strategy() -> impl Strategy<Value = BlkReqType> {
    prop_oneof![
        Just(BlkReqType::In),
        Just(BlkReqType::Out),
        Just(BlkReqType::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `write_header` → `parse` round-trips the type and sector for any
    /// chain shape: the data segment list comes back exactly as built
    /// (order, lengths, directions), framed by header and status.
    #[test]
    fn header_and_chain_round_trip(
        ty in req_type_strategy(),
        sector in any::<u64>(),
        segs in vec((1u32..4096, any::<bool>()), 0..5),
    ) {
        let mut mem = VecMemory::new(1 << 16);
        BlkRequest::write_header(&mut mem, 0x80, ty, sector);
        let mut bufs = vec![(0x80u64, 16u32, false)];
        for (i, &(len, writable)) in segs.iter().enumerate() {
            bufs.push((0x1000 + i as u64 * 0x1000, len, writable));
        }
        bufs.push((0xF000, 1, true));
        let req = BlkRequest::parse(&mem, &chain_of(&bufs)).unwrap();
        prop_assert_eq!(req.req_type, ty);
        prop_assert_eq!(req.sector, sector);
        prop_assert_eq!(req.status_addr, 0xF000);
        prop_assert_eq!(req.data.len(), segs.len());
        for (got, (want, &(len, writable))) in req.data.iter().zip(bufs[1..].iter().zip(&segs)) {
            prop_assert_eq!(*got, (want.0, len, writable));
        }
    }

    /// Write an arbitrary payload through one segmentation, read it back
    /// through a different one: the bytes must survive, and the used-ring
    /// length must count exactly the data written to guest memory plus
    /// the status byte.
    #[test]
    fn split_write_read_round_trip(
        payload in vec(any::<u8>(), 1..2048),
        sector in 0u64..8,
        write_cut in any::<u16>(),
        read_cut in any::<u16>(),
    ) {
        let mut mem = VecMemory::new(1 << 16);
        let mut disk = MemDisk::new(16, false);
        let n = payload.len() as u32;

        // Write via up to two readable segments split at write_cut.
        let wcut = write_cut as u32 % n;
        mem.write(0x1000, &payload);
        BlkRequest::write_header(&mut mem, 0, BlkReqType::Out, sector);
        let mut bufs = vec![(0u64, 16u32, false)];
        if wcut == 0 {
            bufs.push((0x1000, n, false));
        } else {
            bufs.push((0x1000, wcut, false));
            bufs.push((0x1000 + wcut as u64, n - wcut, false));
        }
        bufs.push((0xF000, 1, true));
        let req = BlkRequest::parse(&mem, &chain_of(&bufs)).unwrap();
        let (status, written) = disk.execute(&mut mem, &req);
        prop_assert_eq!(status, blk_status::OK);
        prop_assert_eq!(written, 1, "writes move no bytes into guest memory");

        // Read back via a differently-placed split at read_cut.
        let rcut = read_cut as u32 % n;
        BlkRequest::write_header(&mut mem, 0x40, BlkReqType::In, sector);
        let mut bufs = vec![(0x40u64, 16u32, false)];
        if rcut == 0 {
            bufs.push((0x8000, n, true));
        } else {
            bufs.push((0x8000, rcut, true));
            bufs.push((0x8000 + rcut as u64, n - rcut, true));
        }
        bufs.push((0xF001, 1, true));
        let req = BlkRequest::parse(&mem, &chain_of(&bufs)).unwrap();
        let (status, written) = disk.execute(&mut mem, &req);
        prop_assert_eq!(status, blk_status::OK);
        prop_assert_eq!(written, n + 1);
        prop_assert_eq!(mem.read_vec(0x8000, payload.len()), payload);
        prop_assert_eq!(mem.read_vec(0xF001, 1), vec![blk_status::OK]);
    }

    /// Guest-controlled chaos: any request type, any sector (including
    /// the overflow range near `u64::MAX`), any segment list (including
    /// wrong-direction and out-of-range segments, and the empty
    /// status-only chain). Execution must never panic, must always write
    /// the status byte, and must only report OK when every segment was
    /// serviceable.
    #[test]
    fn arbitrary_requests_uphold_invariants(
        ty in req_type_strategy(),
        sector in any::<u64>(),
        segs in vec((1u32..0x2_0000, any::<bool>()), 0..5),
        read_only in any::<bool>(),
    ) {
        let mut mem = VecMemory::new(1 << 16);
        let mut disk = MemDisk::new(16, read_only);
        let disk_bytes = 16 * SECTOR_SIZE as u64;
        BlkRequest::write_header(&mut mem, 0, ty, sector);
        let mut bufs = vec![(0u64, 16u32, false)];
        for (i, &(len, writable)) in segs.iter().enumerate() {
            bufs.push((0x1000 + i as u64 * 0x2000, len, writable));
        }
        bufs.push((0xF000, 1, true));
        let req = BlkRequest::parse(&mem, &chain_of(&bufs)).unwrap();
        let (status, written) = disk.execute(&mut mem, &req);

        // The status byte always lands in guest memory and matches.
        prop_assert_eq!(mem.read_vec(0xF000, 1), vec![status]);
        let total: u64 = segs.iter().map(|&(len, _)| len as u64).sum();
        match ty {
            BlkReqType::Flush => {
                prop_assert_eq!(status, blk_status::OK);
                prop_assert_eq!(disk.flushes, 1);
            }
            BlkReqType::In => {
                // A status-only chain walks no segments, so it succeeds
                // without ever evaluating the sector.
                let in_range = sector
                    .checked_mul(SECTOR_SIZE as u64)
                    .and_then(|s| s.checked_add(total))
                    .is_some_and(|end| end <= disk_bytes);
                let all_writable = segs.iter().all(|&(_, w)| w);
                if status == blk_status::OK {
                    prop_assert!(segs.is_empty() || (in_range && all_writable));
                    prop_assert_eq!(written as u64, total + 1);
                } else {
                    prop_assert!(!in_range || !all_writable);
                    prop_assert!((written as u64) < total + 1);
                }
            }
            BlkReqType::Out => {
                if read_only {
                    prop_assert_eq!(status, blk_status::IOERR);
                    prop_assert!(disk.capacity() == 16, "disk shape untouched");
                } else if status == blk_status::OK {
                    let in_range = sector
                        .checked_mul(SECTOR_SIZE as u64)
                        .and_then(|s| s.checked_add(total))
                        .is_some_and(|end| end <= disk_bytes);
                    prop_assert!(
                        segs.is_empty() || (in_range && segs.iter().all(|&(_, w)| !w))
                    );
                }
                // Writes never move data into guest memory.
                prop_assert_eq!(written, 1);
            }
        }
    }
}
