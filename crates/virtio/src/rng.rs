//! virtio-rng (entropy) device type — the fourth device type of the
//! framework, and the simplest possible demonstration of the paper's
//! "minimal modifications per device type" claim: an entropy device has
//! **no device-specific configuration structure at all** and a single
//! request queue of device-writable buffers (VirtIO 1.2 §5.4). On the
//! FPGA, the natural backing is a true-RNG primitive (ring-oscillator
//! jitter); here a deterministic generator stands in so tests are
//! reproducible.

use crate::device_queue::Chain;
use crate::mem::GuestMemory;

/// Queue index of the request queue.
pub const REQUEST_QUEUE: u16 = 0;

/// A deterministic entropy source standing in for a fabric TRNG.
///
/// xorshift64* — tiny, passes casual statistical checks, and (being
/// seeded) keeps the simulation reproducible. A real device would gate
/// this behind a hardware entropy conditioner.
#[derive(Clone, Debug)]
pub struct EntropySource {
    state: u64,
    /// Bytes produced (for reports).
    pub produced: u64,
}

impl EntropySource {
    /// Seeded source (seed must be non-zero; 0 is mapped away).
    pub fn new(seed: u64) -> Self {
        EntropySource {
            state: seed | 1,
            produced: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Fill `buf` with entropy.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
        self.produced += buf.len() as u64;
    }

    /// Serve one request chain: fill every writable buffer. Returns the
    /// bytes written (the used-ring `len`).
    pub fn serve<M: GuestMemory>(&mut self, mem: &mut M, chain: &Chain) -> u32 {
        let mut written = 0u32;
        for buf in chain.bufs.iter().filter(|b| b.writable) {
            let mut data = vec![0u8; buf.len as usize];
            self.fill(&mut data);
            mem.write(buf.addr, &data);
            written += buf.len;
        }
        written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device_queue::DeviceQueue;
    use crate::driver_queue::{BufferSpec, DriverQueue};
    use crate::mem::VecMemory;
    use crate::ring::VirtqueueLayout;

    #[test]
    fn deterministic_for_seed() {
        let mut a = EntropySource::new(7);
        let mut b = EntropySource::new(7);
        let mut ba = [0u8; 32];
        let mut bb = [0u8; 32];
        a.fill(&mut ba);
        b.fill(&mut bb);
        assert_eq!(ba, bb);
        let mut c = EntropySource::new(8);
        let mut bc = [0u8; 32];
        c.fill(&mut bc);
        assert_ne!(ba, bc);
    }

    #[test]
    fn output_is_not_degenerate() {
        let mut src = EntropySource::new(99);
        let mut buf = vec![0u8; 4096];
        src.fill(&mut buf);
        // Crude sanity: byte histogram reasonably flat, no long runs.
        let mut hist = [0u32; 256];
        for &b in &buf {
            hist[b as usize] += 1;
        }
        assert!(hist.iter().all(|&c| c < 64), "histogram too peaked");
        assert!(!buf.windows(8).any(|w| w.iter().all(|&b| b == w[0])));
        assert_eq!(src.produced, 4096);
    }

    #[test]
    fn serves_requests_through_the_ring() {
        let mut mem = VecMemory::new(1 << 16);
        let layout = VirtqueueLayout::contiguous(0x1000, 8);
        let mut drv = DriverQueue::new(&mut mem, layout, false);
        let mut dev = DeviceQueue::new(layout, false, false);
        let mut src = EntropySource::new(3);
        // The guest asks for 48 bytes of entropy.
        drv.add_and_publish(&mut mem, &[BufferSpec::writable(0x8000, 48)])
            .unwrap();
        let chain = dev.pop_chain(&mem).unwrap().unwrap();
        let written = src.serve(&mut mem, &chain);
        assert_eq!(written, 48);
        dev.complete(&mut mem, chain.head, written);
        let used = drv.pop_used(&mut mem).unwrap();
        assert_eq!(used.len, 48);
        let got = mem.read_vec(0x8000, 48);
        assert!(!got.iter().all(|&b| b == 0), "entropy delivered");
    }

    #[test]
    fn readable_buffers_ignored() {
        // rng requests are all-writable per spec; stray readable buffers
        // contribute nothing.
        let mut mem = VecMemory::new(1 << 16);
        let layout = VirtqueueLayout::contiguous(0x1000, 8);
        let mut drv = DriverQueue::new(&mut mem, layout, false);
        let dev = DeviceQueue::new(layout, false, false);
        let mut src = EntropySource::new(3);
        drv.add_and_publish(
            &mut mem,
            &[
                BufferSpec::readable(0x7000, 16),
                BufferSpec::writable(0x8000, 16),
            ],
        )
        .unwrap();
        let (chain, _) = dev.resolve_at(&mem, 0).unwrap();
        assert_eq!(src.serve(&mut mem, &chain), 16);
    }
}
