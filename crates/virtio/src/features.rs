//! Feature negotiation and the device status state machine.
//!
//! VirtIO's forward/backward compatibility story — one of the paper's
//! motivations for replacing per-device drivers — rests on feature bits:
//! the device offers a set, the driver accepts a subset, and the device
//! validates the result at `FEATURES_OK`. The status byte walks
//! `ACKNOWLEDGE → DRIVER → FEATURES_OK → DRIVER_OK`, with `FAILED` /
//! `NEEDS_RESET` escape hatches (VirtIO 1.2 §2.1–2.2, §3.1).

/// Device status bits (VirtIO 1.2 §2.1).
pub mod status {
    /// Guest OS noticed the device.
    pub const ACKNOWLEDGE: u8 = 1;
    /// Guest OS knows how to drive it.
    pub const DRIVER: u8 = 2;
    /// Driver is ready to operate the device.
    pub const DRIVER_OK: u8 = 4;
    /// Feature negotiation finished.
    pub const FEATURES_OK: u8 = 8;
    /// Device hit an unrecoverable error.
    pub const NEEDS_RESET: u8 = 64;
    /// Driver gave up on the device.
    pub const FAILED: u8 = 128;
}

/// Device-independent feature bits (VirtIO 1.2 §6).
pub mod feature {
    /// Indirect descriptor tables supported.
    pub const RING_INDIRECT_DESC: u64 = 1 << 28;
    /// `used_event`/`avail_event` notification suppression.
    pub const RING_EVENT_IDX: u64 = 1 << 29;
    /// Modern (non-transitional) device — mandatory for VirtIO 1.x.
    pub const VERSION_1: u64 = 1 << 32;
    /// Device can be used from a restricted-access context.
    pub const ACCESS_PLATFORM: u64 = 1 << 33;
    /// Packed ring layout (VirtIO 1.2 §2.8). The paper's framework
    /// implements split rings; the testbed's `VirtioPacked` driver kind
    /// negotiates this bit to drive the one-ring layout instead (E17).
    pub const RING_PACKED: u64 = 1 << 34;
}

/// Outcome of the driver's feature write at `FEATURES_OK` time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NegotiationError {
    /// Driver accepted a bit the device never offered.
    NotOffered {
        /// The offending bits.
        bits: u64,
    },
    /// Driver did not accept `VERSION_1` (legacy drivers are rejected by
    /// the modern-only interface the paper's framework implements).
    MissingVersion1,
    /// Status written out of order.
    BadTransition {
        /// Status before the write.
        from: u8,
        /// Status the driver attempted to set.
        to: u8,
    },
}

/// The device-side negotiation state machine.
#[derive(Clone, Debug)]
pub struct Negotiation {
    /// Features the device offers.
    offered: u64,
    /// Features the driver has written so far.
    driver_features: u64,
    /// Current device status byte.
    status: u8,
    /// Whether the device rejected the feature set (drives FEATURES_OK
    /// read-back).
    features_rejected: bool,
}

impl Negotiation {
    /// A device offering `offered` (must include `VERSION_1`).
    pub fn new(offered: u64) -> Self {
        assert!(
            offered & feature::VERSION_1 != 0,
            "modern devices must offer VERSION_1"
        );
        Negotiation {
            offered,
            driver_features: 0,
            status: 0,
            features_rejected: false,
        }
    }

    /// Features the device offers (driver reads these via
    /// `device_feature_select`/`device_feature`).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Current status byte (driver reads back after every write, per
    /// spec).
    pub fn status(&self) -> u8 {
        if self.features_rejected {
            // FEATURES_OK reads back clear if the device rejected the set.
            self.status & !status::FEATURES_OK
        } else {
            self.status
        }
    }

    /// Negotiated feature set — only meaningful once `DRIVER_OK`.
    pub fn negotiated(&self) -> u64 {
        self.driver_features & self.offered
    }

    /// True once the driver has completed initialization.
    pub fn is_live(&self) -> bool {
        self.status() & status::DRIVER_OK != 0 && !self.features_rejected
    }

    /// Driver writes its accepted feature bits (must happen before
    /// FEATURES_OK).
    pub fn write_driver_features(&mut self, bits: u64) {
        self.driver_features = bits;
    }

    /// Driver writes the status byte. Writing 0 resets the device.
    pub fn write_status(&mut self, new: u8) -> Result<(), NegotiationError> {
        if new == 0 {
            *self = Negotiation::new(self.offered);
            return Ok(());
        }
        let old = self.status;
        // Bits may only be added, never removed (except by reset).
        if old & !new != 0 {
            return Err(NegotiationError::BadTransition { from: old, to: new });
        }
        if new & status::FEATURES_OK != 0 && old & status::FEATURES_OK == 0 {
            // Validate the driver's feature set now.
            let bogus = self.driver_features & !self.offered;
            if bogus != 0 {
                self.features_rejected = true;
                self.status = new;
                return Err(NegotiationError::NotOffered { bits: bogus });
            }
            if self.driver_features & feature::VERSION_1 == 0 {
                self.features_rejected = true;
                self.status = new;
                return Err(NegotiationError::MissingVersion1);
            }
        }
        if new & status::DRIVER_OK != 0 && old & status::FEATURES_OK == 0 {
            return Err(NegotiationError::BadTransition { from: old, to: new });
        }
        self.status = new;
        Ok(())
    }

    /// Device-side fault: force NEEDS_RESET.
    pub fn need_reset(&mut self) {
        self.status |= status::NEEDS_RESET;
    }
}

/// The standard driver-side initialization sequence (VirtIO 1.2 §3.1.1):
/// reset, ACKNOWLEDGE, DRIVER, feature selection via `select`, FEATURES_OK
/// (verified by read-back), then the caller sets up queues and finally
/// DRIVER_OK. Returns the negotiated set.
pub fn driver_init(dev: &mut Negotiation, want: u64) -> Result<u64, NegotiationError> {
    dev.write_status(0)?;
    dev.write_status(status::ACKNOWLEDGE)?;
    dev.write_status(status::ACKNOWLEDGE | status::DRIVER)?;
    let accept = dev.offered() & want | feature::VERSION_1;
    dev.write_driver_features(accept);
    dev.write_status(status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK)?;
    if dev.status() & status::FEATURES_OK == 0 {
        return Err(NegotiationError::NotOffered { bits: 0 });
    }
    Ok(dev.negotiated())
}

#[cfg(test)]
mod tests {
    use super::*;

    const NET_OFFER: u64 =
        feature::VERSION_1 | feature::RING_EVENT_IDX | feature::RING_INDIRECT_DESC | 0x23;

    #[test]
    fn happy_path() {
        let mut dev = Negotiation::new(NET_OFFER);
        let got =
            driver_init(&mut dev, feature::VERSION_1 | feature::RING_EVENT_IDX | 0x3).unwrap();
        assert_eq!(got, feature::VERSION_1 | feature::RING_EVENT_IDX | 0x3);
        dev.write_status(
            status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK | status::DRIVER_OK,
        )
        .unwrap();
        assert!(dev.is_live());
        assert_eq!(dev.negotiated(), got);
    }

    #[test]
    fn subset_negotiation() {
        // Driver wanting an un-offered bit only gets the intersection when
        // using the standard helper (it masks with offered()).
        let mut dev = Negotiation::new(NET_OFFER);
        let got = driver_init(&mut dev, u64::MAX).unwrap();
        assert_eq!(got, NET_OFFER);
    }

    #[test]
    fn rejects_unoffered_bits() {
        let mut dev = Negotiation::new(NET_OFFER);
        dev.write_status(status::ACKNOWLEDGE).unwrap();
        dev.write_status(status::ACKNOWLEDGE | status::DRIVER)
            .unwrap();
        dev.write_driver_features(feature::VERSION_1 | (1 << 7)); // not offered
        let err = dev
            .write_status(status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK)
            .unwrap_err();
        assert_eq!(err, NegotiationError::NotOffered { bits: 1 << 7 });
        // Spec: FEATURES_OK reads back clear → driver knows to bail.
        assert_eq!(dev.status() & status::FEATURES_OK, 0);
        assert!(!dev.is_live());
    }

    #[test]
    fn rejects_legacy_driver() {
        let mut dev = Negotiation::new(NET_OFFER);
        dev.write_status(status::ACKNOWLEDGE).unwrap();
        dev.write_status(status::ACKNOWLEDGE | status::DRIVER)
            .unwrap();
        dev.write_driver_features(0x3); // no VERSION_1
        let err = dev
            .write_status(status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK)
            .unwrap_err();
        assert_eq!(err, NegotiationError::MissingVersion1);
    }

    /// The failure path of VirtIO 1.2 §3.1.1 step 5: the device clears
    /// FEATURES_OK on read-back and the driver gives up by *adding* the
    /// FAILED bit to the status it already set.
    #[test]
    fn driver_sets_failed_after_rejection() {
        let mut dev = Negotiation::new(NET_OFFER);
        dev.write_status(status::ACKNOWLEDGE).unwrap();
        dev.write_status(status::ACKNOWLEDGE | status::DRIVER)
            .unwrap();
        dev.write_driver_features(feature::VERSION_1 | (1 << 7)); // not offered
        assert!(dev
            .write_status(status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK)
            .is_err());
        assert_eq!(dev.status() & status::FEATURES_OK, 0);
        // Driver bails: status bits may only be added, so FAILED lands
        // on top of ACKNOWLEDGE|DRIVER|FEATURES_OK.
        dev.write_status(
            status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK | status::FAILED,
        )
        .unwrap();
        assert!(dev.status() & status::FAILED != 0);
        assert_eq!(
            dev.status() & status::FEATURES_OK,
            0,
            "rejection keeps masking FEATURES_OK"
        );
        assert!(!dev.is_live());
    }

    /// A FAILED device is not bricked: reset clears the rejection and a
    /// corrected feature set negotiates cleanly.
    #[test]
    fn reset_recovers_from_failed_negotiation() {
        let mut dev = Negotiation::new(NET_OFFER);
        dev.write_status(status::ACKNOWLEDGE).unwrap();
        dev.write_status(status::ACKNOWLEDGE | status::DRIVER)
            .unwrap();
        dev.write_driver_features(feature::VERSION_1 | feature::RING_PACKED); // not offered
        assert_eq!(
            dev.write_status(status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK)
                .unwrap_err(),
            NegotiationError::NotOffered {
                bits: feature::RING_PACKED
            }
        );
        dev.write_status(
            status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK | status::FAILED,
        )
        .unwrap();
        // Second attempt after reset, this time within the offer.
        let got = driver_init(&mut dev, feature::VERSION_1 | feature::RING_EVENT_IDX).unwrap();
        assert_eq!(got, feature::VERSION_1 | feature::RING_EVENT_IDX);
        dev.write_status(
            status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK | status::DRIVER_OK,
        )
        .unwrap();
        assert!(dev.is_live());
    }

    /// DRIVER_OK written while the device is still rejecting the feature
    /// set must not bring the device live.
    #[test]
    fn driver_ok_after_rejection_stays_dead() {
        let mut dev = Negotiation::new(NET_OFFER);
        dev.write_status(status::ACKNOWLEDGE).unwrap();
        dev.write_status(status::ACKNOWLEDGE | status::DRIVER)
            .unwrap();
        dev.write_driver_features(feature::VERSION_1 | (1 << 9));
        assert!(dev
            .write_status(status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK)
            .is_err());
        // A buggy driver barrels on to DRIVER_OK anyway.
        let _ = dev.write_status(
            status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK | status::DRIVER_OK,
        );
        assert!(!dev.is_live(), "rejected negotiation must never go live");
    }

    #[test]
    fn driver_ok_requires_features_ok() {
        let mut dev = Negotiation::new(NET_OFFER);
        dev.write_status(status::ACKNOWLEDGE).unwrap();
        let err = dev
            .write_status(status::ACKNOWLEDGE | status::DRIVER_OK)
            .unwrap_err();
        assert!(matches!(err, NegotiationError::BadTransition { .. }));
    }

    #[test]
    fn status_bits_cannot_be_removed() {
        let mut dev = Negotiation::new(NET_OFFER);
        dev.write_status(status::ACKNOWLEDGE | status::DRIVER)
            .unwrap();
        let err = dev.write_status(status::ACKNOWLEDGE).unwrap_err();
        assert!(matches!(err, NegotiationError::BadTransition { .. }));
    }

    #[test]
    fn reset_clears_everything() {
        let mut dev = Negotiation::new(NET_OFFER);
        driver_init(&mut dev, u64::MAX).unwrap();
        dev.write_status(0).unwrap();
        assert_eq!(dev.status(), 0);
        assert_eq!(dev.negotiated() & feature::VERSION_1, 0);
        // Renegotiation works after reset.
        driver_init(&mut dev, feature::VERSION_1).unwrap();
        assert_eq!(dev.negotiated(), feature::VERSION_1);
    }

    #[test]
    fn needs_reset_flag_visible() {
        let mut dev = Negotiation::new(NET_OFFER);
        driver_init(&mut dev, u64::MAX).unwrap();
        dev.need_reset();
        assert!(dev.status() & status::NEEDS_RESET != 0);
    }

    #[test]
    #[should_panic(expected = "VERSION_1")]
    fn device_must_offer_version_1() {
        let _ = Negotiation::new(0x3);
    }
}
