//! virtio-console device type — the device implemented by the prior work
//! \[14\] that this paper extends. Kept in the testbed both for the
//! device-type comparison experiment (E9) and to demonstrate how little
//! changes between device types: only this config structure and the queue
//! count differ from virtio-net.

/// Queue index of the receive queue (port 0).
pub const RX_QUEUE: u16 = 0;
/// Queue index of the transmit queue (port 0).
pub const TX_QUEUE: u16 = 1;

/// virtio-console feature bits (VirtIO 1.2 §5.3.3).
pub mod feature {
    /// Console size (`cols`/`rows`) is valid.
    pub const SIZE: u64 = 1 << 0;
    /// Device supports multiple ports.
    pub const MULTIPORT: u64 = 1 << 1;
    /// Emergency write support.
    pub const EMERG_WRITE: u64 = 1 << 2;
}

/// `struct virtio_console_config`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VirtioConsoleConfig {
    /// Console columns (SIZE feature).
    pub cols: u16,
    /// Console rows (SIZE feature).
    pub rows: u16,
    /// Maximum ports (MULTIPORT feature).
    pub max_nr_ports: u32,
    /// Emergency write register (EMERG_WRITE feature).
    pub emerg_wr: u32,
}

impl VirtioConsoleConfig {
    /// Encoded size.
    pub const LEN: usize = 12;

    /// The single-port console of \[14\].
    pub fn testbed_default() -> Self {
        VirtioConsoleConfig {
            cols: 80,
            rows: 25,
            max_nr_ports: 1,
            emerg_wr: 0,
        }
    }

    /// Serialize to config-space layout.
    pub fn to_bytes(self) -> [u8; Self::LEN] {
        let mut b = [0u8; Self::LEN];
        b[0..2].copy_from_slice(&self.cols.to_le_bytes());
        b[2..4].copy_from_slice(&self.rows.to_le_bytes());
        b[4..8].copy_from_slice(&self.max_nr_ports.to_le_bytes());
        b[8..12].copy_from_slice(&self.emerg_wr.to_le_bytes());
        b
    }

    /// MMIO read of `len` bytes at `off`.
    pub fn read(&self, off: u64, len: usize) -> u64 {
        let bytes = self.to_bytes();
        let mut v = 0u64;
        for i in 0..len.min(8) {
            let idx = off as usize + i;
            let byte = if idx < Self::LEN { bytes[idx] } else { 0 };
            v |= (byte as u64) << (8 * i);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_layout() {
        let c = VirtioConsoleConfig::testbed_default();
        let b = c.to_bytes();
        assert_eq!(u16::from_le_bytes([b[0], b[1]]), 80);
        assert_eq!(u16::from_le_bytes([b[2], b[3]]), 25);
        assert_eq!(u32::from_le_bytes(b[4..8].try_into().unwrap()), 1);
    }

    #[test]
    fn mmio_reads() {
        let c = VirtioConsoleConfig::testbed_default();
        assert_eq!(c.read(0, 2), 80);
        assert_eq!(c.read(2, 2), 25);
        assert_eq!(c.read(4, 4), 1);
        assert_eq!(c.read(12, 4), 0);
    }
}
