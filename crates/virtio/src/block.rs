//! virtio-blk device type — the "more VirtIO device types" contribution
//! bullet. A request queue carries 3-part chains: a 16-byte readable
//! header, the data buffers, and a 1-byte writable status footer
//! (VirtIO 1.2 §5.2.6).

use crate::device_queue::Chain;
use crate::mem::GuestMemory;

/// Queue index of the request queue.
pub const REQUEST_QUEUE: u16 = 0;

/// Sector size the spec fixes for request addressing.
pub const SECTOR_SIZE: usize = 512;

/// virtio-blk feature bits.
pub mod feature {
    /// Maximum segment count in `seg_max` is valid.
    pub const SEG_MAX: u64 = 1 << 2;
    /// Device is read-only.
    pub const RO: u64 = 1 << 5;
    /// Flush command supported.
    pub const FLUSH: u64 = 1 << 9;
}

/// Request types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum BlkReqType {
    /// Read sectors.
    In = 0,
    /// Write sectors.
    Out = 1,
    /// Flush the write cache.
    Flush = 4,
}

/// Request status byte values.
pub mod blk_status {
    /// Success.
    pub const OK: u8 = 0;
    /// I/O error.
    pub const IOERR: u8 = 1;
    /// Unsupported request.
    pub const UNSUPP: u8 = 2;
}

/// `struct virtio_blk_config` (abridged to the fields the testbed uses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VirtioBlkConfig {
    /// Device capacity in 512-byte sectors.
    pub capacity: u64,
    /// Maximum segments per request.
    pub seg_max: u32,
}

impl VirtioBlkConfig {
    /// Encoded size of the exposed fields.
    pub const LEN: usize = 16;

    /// Serialize to config-space layout (capacity at 0, seg_max at 12 per
    /// the spec's field order with size_max at 8 left zero).
    pub fn to_bytes(self) -> [u8; Self::LEN] {
        let mut b = [0u8; Self::LEN];
        b[0..8].copy_from_slice(&self.capacity.to_le_bytes());
        b[12..16].copy_from_slice(&self.seg_max.to_le_bytes());
        b
    }

    /// MMIO read of `len` bytes at `off`.
    pub fn read(&self, off: u64, len: usize) -> u64 {
        let bytes = self.to_bytes();
        let mut v = 0u64;
        for i in 0..len.min(8) {
            let idx = off as usize + i;
            let byte = if idx < Self::LEN { bytes[idx] } else { 0 };
            v |= (byte as u64) << (8 * i);
        }
        v
    }
}

/// A parsed block request (header + data placement + status slot).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlkRequest {
    /// Request type.
    pub req_type: BlkReqType,
    /// Starting sector.
    pub sector: u64,
    /// `(addr, len, writable)` of each data buffer.
    pub data: Vec<(u64, u32, bool)>,
    /// Address of the 1-byte status footer.
    pub status_addr: u64,
}

/// Request-parsing failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlkParseError {
    /// Chain has fewer than header + status descriptors.
    TooShort,
    /// Header descriptor is not 16 readable bytes.
    BadHeader,
    /// Status descriptor is not 1 writable byte.
    BadStatus,
    /// Unknown request type.
    UnknownType(u32),
}

impl BlkRequest {
    /// Parse a request chain: readable 16-byte header, data descriptors,
    /// writable 1-byte status.
    pub fn parse<M: GuestMemory>(mem: &M, chain: &Chain) -> Result<BlkRequest, BlkParseError> {
        if chain.bufs.len() < 2 {
            return Err(BlkParseError::TooShort);
        }
        let hdr = chain.bufs[0];
        if hdr.writable || hdr.len != 16 {
            return Err(BlkParseError::BadHeader);
        }
        let status = *chain.bufs.last().unwrap();
        if !status.writable || status.len != 1 {
            return Err(BlkParseError::BadStatus);
        }
        let raw_type = mem.read_u32(hdr.addr);
        let req_type = match raw_type {
            0 => BlkReqType::In,
            1 => BlkReqType::Out,
            4 => BlkReqType::Flush,
            other => return Err(BlkParseError::UnknownType(other)),
        };
        let sector = mem.read_u64(hdr.addr + 8);
        let data = chain.bufs[1..chain.bufs.len() - 1]
            .iter()
            .map(|b| (b.addr, b.len, b.writable))
            .collect();
        Ok(BlkRequest {
            req_type,
            sector,
            data,
            status_addr: status.addr,
        })
    }

    /// Encode a request header into guest memory (driver-side helper).
    pub fn write_header<M: GuestMemory>(mem: &mut M, addr: u64, req_type: BlkReqType, sector: u64) {
        mem.write_u32(addr, req_type as u32);
        mem.write_u32(addr + 4, 0); // reserved
        mem.write_u64(addr + 8, sector);
    }
}

/// An in-memory disk backend executing parsed requests — the functional
/// model behind the virtio-blk demo.
#[derive(Clone, Debug)]
pub struct MemDisk {
    sectors: Vec<u8>,
    read_only: bool,
    /// Completed flush commands (for tests/reports).
    pub flushes: u64,
}

impl MemDisk {
    /// A zeroed disk of `capacity` sectors.
    pub fn new(capacity: u64, read_only: bool) -> Self {
        MemDisk {
            sectors: vec![0; capacity as usize * SECTOR_SIZE],
            read_only,
            flushes: 0,
        }
    }

    /// Capacity in sectors.
    pub fn capacity(&self) -> u64 {
        (self.sectors.len() / SECTOR_SIZE) as u64
    }

    /// Host-side image load: copy `data` into the disk starting at
    /// `sector`, bypassing the request path (and the read-only flag —
    /// a read-only device still ships with content). Panics when the
    /// range leaves the disk; pre-fill is testbed setup, not a
    /// guest-controlled path.
    pub fn load(&mut self, sector: u64, data: &[u8]) {
        let start = sector as usize * SECTOR_SIZE;
        self.sectors[start..start + data.len()].copy_from_slice(data);
    }

    /// Byte range `[start, start+len)` of a request segment, or `None`
    /// when the arithmetic overflows or the range leaves the disk. The
    /// sector is guest-controlled: `sector * 512` near `u64::MAX` must
    /// wrap into an IOERR, never into a bounds-check bypass.
    fn span(&self, off: Option<usize>, len: u32) -> Option<(usize, usize)> {
        let start = off?;
        let end = start.checked_add(len as usize)?;
        if end > self.sectors.len() {
            return None;
        }
        Some((start, end))
    }

    /// Execute `req` against guest memory. Returns `(status, bytes
    /// written into guest memory)` — the status byte is *also* written to
    /// `req.status_addr`, and the total includes it, matching what goes
    /// into the used-ring `len` field.
    pub fn execute<M: GuestMemory>(&mut self, mem: &mut M, req: &BlkRequest) -> (u8, u32) {
        let mut written = 0u32;
        let start = usize::try_from(req.sector)
            .ok()
            .and_then(|s| s.checked_mul(SECTOR_SIZE));
        let status = match req.req_type {
            BlkReqType::Flush => {
                self.flushes += 1;
                blk_status::OK
            }
            BlkReqType::In => {
                let mut off = start;
                let mut ok = blk_status::OK;
                for &(addr, len, writable) in &req.data {
                    let Some((s, e)) = self.span(off, len).filter(|_| writable) else {
                        ok = blk_status::IOERR;
                        break;
                    };
                    mem.write(addr, &self.sectors[s..e]);
                    written += len;
                    off = Some(e);
                }
                ok
            }
            BlkReqType::Out => {
                if self.read_only {
                    blk_status::IOERR
                } else {
                    let mut off = start;
                    let mut ok = blk_status::OK;
                    for &(addr, len, writable) in &req.data {
                        let Some((s, e)) = self.span(off, len).filter(|_| !writable) else {
                            ok = blk_status::IOERR;
                            break;
                        };
                        let data = mem.read_vec(addr, len as usize);
                        self.sectors[s..e].copy_from_slice(&data);
                        off = Some(e);
                    }
                    ok
                }
            }
        };
        mem.write(req.status_addr, &[status]);
        (status, written + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device_queue::{Chain, ChainBuf};
    use crate::mem::VecMemory;

    fn chain_of(bufs: &[(u64, u32, bool)]) -> Chain {
        Chain {
            head: 0,
            bufs: bufs
                .iter()
                .map(|&(addr, len, writable)| ChainBuf {
                    addr,
                    len,
                    writable,
                })
                .collect(),
        }
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut mem = VecMemory::new(1 << 16);
        let mut disk = MemDisk::new(8, false);
        // Write request: header @0, data @0x100 (1 sector), status @0x400.
        BlkRequest::write_header(&mut mem, 0, BlkReqType::Out, 2);
        let payload: Vec<u8> = (0..SECTOR_SIZE).map(|i| i as u8).collect();
        mem.write(0x100, &payload);
        let chain = chain_of(&[(0, 16, false), (0x100, 512, false), (0x400, 1, true)]);
        let req = BlkRequest::parse(&mem, &chain).unwrap();
        assert_eq!(req.req_type, BlkReqType::Out);
        assert_eq!(req.sector, 2);
        let (status, _) = disk.execute(&mut mem, &req);
        assert_eq!(status, blk_status::OK);

        // Read it back into 0x1000.
        BlkRequest::write_header(&mut mem, 0x40, BlkReqType::In, 2);
        let chain = chain_of(&[(0x40, 16, false), (0x1000, 512, true), (0x401, 1, true)]);
        let req = BlkRequest::parse(&mem, &chain).unwrap();
        let (status, written) = disk.execute(&mut mem, &req);
        assert_eq!(status, blk_status::OK);
        assert_eq!(written, 513);
        assert_eq!(mem.read_vec(0x1000, 512), payload);
        assert_eq!(mem.read_vec(0x401, 1), vec![blk_status::OK]);
    }

    #[test]
    fn read_only_disk_rejects_writes() {
        let mut mem = VecMemory::new(1 << 16);
        let mut disk = MemDisk::new(4, true);
        BlkRequest::write_header(&mut mem, 0, BlkReqType::Out, 0);
        let chain = chain_of(&[(0, 16, false), (0x100, 512, false), (0x400, 1, true)]);
        let req = BlkRequest::parse(&mem, &chain).unwrap();
        let (status, _) = disk.execute(&mut mem, &req);
        assert_eq!(status, blk_status::IOERR);
    }

    #[test]
    fn out_of_range_read_errors() {
        let mut mem = VecMemory::new(1 << 16);
        let mut disk = MemDisk::new(2, false);
        BlkRequest::write_header(&mut mem, 0, BlkReqType::In, 5);
        let chain = chain_of(&[(0, 16, false), (0x100, 512, true), (0x400, 1, true)]);
        let req = BlkRequest::parse(&mem, &chain).unwrap();
        let (status, _) = disk.execute(&mut mem, &req);
        assert_eq!(status, blk_status::IOERR);
    }

    #[test]
    fn huge_sector_read_is_ioerr_not_overflow() {
        // Regression: `sector * SECTOR_SIZE` used to be unchecked; a
        // guest-controlled sector near u64::MAX panicked in debug builds
        // and wrapped past the bounds check in release builds.
        let mut mem = VecMemory::new(1 << 16);
        let mut disk = MemDisk::new(4, false);
        BlkRequest::write_header(&mut mem, 0, BlkReqType::In, u64::MAX - 1);
        let chain = chain_of(&[(0, 16, false), (0x100, 512, true), (0x400, 1, true)]);
        let req = BlkRequest::parse(&mem, &chain).unwrap();
        let (status, written) = disk.execute(&mut mem, &req);
        assert_eq!(status, blk_status::IOERR);
        assert_eq!(written, 1, "no data bytes on a failed read");
        assert_eq!(mem.read_vec(0x400, 1), vec![blk_status::IOERR]);
    }

    #[test]
    fn huge_sector_write_is_ioerr_not_overflow() {
        let mut mem = VecMemory::new(1 << 16);
        let mut disk = MemDisk::new(4, false);
        BlkRequest::write_header(&mut mem, 0, BlkReqType::Out, u64::MAX / 512 + 1);
        let chain = chain_of(&[(0, 16, false), (0x100, 512, false), (0x400, 1, true)]);
        let req = BlkRequest::parse(&mem, &chain).unwrap();
        let (status, _) = disk.execute(&mut mem, &req);
        assert_eq!(status, blk_status::IOERR);
        assert_eq!(mem.read_vec(0x400, 1), vec![blk_status::IOERR]);
        // Disk contents untouched.
        assert!(disk.sectors.iter().all(|&b| b == 0));
    }

    #[test]
    fn segment_end_overflow_is_ioerr() {
        // A valid start offset whose segment end overflows usize must
        // also fail cleanly.
        let mut mem = VecMemory::new(1 << 16);
        let mut disk = MemDisk::new(4, false);
        BlkRequest::write_header(&mut mem, 0, BlkReqType::In, 3);
        let chain = chain_of(&[(0, 16, false), (0x100, u32::MAX, true), (0x400, 1, true)]);
        let req = BlkRequest::parse(&mem, &chain).unwrap();
        let (status, _) = disk.execute(&mut mem, &req);
        assert_eq!(status, blk_status::IOERR);
    }

    #[test]
    fn flush_counts() {
        let mut mem = VecMemory::new(4096);
        let mut disk = MemDisk::new(2, false);
        BlkRequest::write_header(&mut mem, 0, BlkReqType::Flush, 0);
        let chain = chain_of(&[(0, 16, false), (0x400, 1, true)]);
        let req = BlkRequest::parse(&mem, &chain).unwrap();
        let (status, written) = disk.execute(&mut mem, &req);
        assert_eq!(status, blk_status::OK);
        assert_eq!(written, 1);
        assert_eq!(disk.flushes, 1);
    }

    #[test]
    fn parse_errors() {
        let mem = VecMemory::new(4096);
        assert_eq!(
            BlkRequest::parse(&mem, &chain_of(&[(0, 16, false)])).unwrap_err(),
            BlkParseError::TooShort
        );
        assert_eq!(
            BlkRequest::parse(&mem, &chain_of(&[(0, 8, false), (0x400, 1, true)])).unwrap_err(),
            BlkParseError::BadHeader
        );
        assert_eq!(
            BlkRequest::parse(&mem, &chain_of(&[(0, 16, false), (0x400, 2, true)])).unwrap_err(),
            BlkParseError::BadStatus
        );
        let mut mem = VecMemory::new(4096);
        mem.write_u32(0, 99);
        assert_eq!(
            BlkRequest::parse(&mem, &chain_of(&[(0, 16, false), (0x400, 1, true)])).unwrap_err(),
            BlkParseError::UnknownType(99)
        );
    }

    #[test]
    fn config_encoding() {
        let c = VirtioBlkConfig {
            capacity: 0x1_0000,
            seg_max: 4,
        };
        assert_eq!(c.read(0, 8), 0x1_0000);
        assert_eq!(c.read(12, 4), 4);
    }
}
