//! Device-side virtqueue operation.
//!
//! This is what the paper's FPGA VirtIO controller does in hardware: on a
//! doorbell, read the driver's avail index, fetch the new avail entries
//! and their descriptor chains, move the data, then publish used entries
//! and decide whether to interrupt.
//!
//! Two API layers:
//!
//! * **step-wise accessors** (`fetch_avail_idx`, `fetch_avail_entry`,
//!   `fetch_desc`) that perform exactly one bus-sized access each — the
//!   FPGA controller drives these and charges each as a timed PCIe DMA
//!   read, so the event counts in the latency model are structural, not
//!   assumed;
//! * **convenience helpers** (`pop_chain`, `complete`) composing the
//!   steps for software backends and tests.

use crate::mem::GuestMemory;
use crate::ring::{
    vring_need_event, Desc, VirtqueueLayout, AVAIL_F_NO_INTERRUPT, DESC_F_INDIRECT,
    USED_F_NO_NOTIFY,
};

/// A resolved element of a descriptor chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainBuf {
    /// Guest-physical address of the buffer.
    pub addr: u64,
    /// Buffer length.
    pub len: u32,
    /// Device-writable?
    pub writable: bool,
}

/// A full descriptor chain with its head index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chain {
    /// Head descriptor index (goes into the used ring's `id`).
    pub head: u16,
    /// Buffers in chain order.
    pub bufs: Vec<ChainBuf>,
}

impl Chain {
    /// Total readable bytes.
    pub fn readable_len(&self) -> u32 {
        self.bufs
            .iter()
            .filter(|b| !b.writable)
            .map(|b| b.len)
            .sum()
    }

    /// Total writable bytes.
    pub fn writable_len(&self) -> u32 {
        self.bufs.iter().filter(|b| b.writable).map(|b| b.len).sum()
    }

    /// Number of descriptors in the chain (= DMA descriptor fetches the
    /// device performed).
    pub fn desc_count(&self) -> usize {
        self.bufs.len()
    }
}

/// Chain-resolution failures (driver bugs or corruption a robust device
/// must survive).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainError {
    /// The chain is longer than the queue size (loop or corruption).
    TooLong,
    /// A descriptor index is out of range.
    BadIndex(u16),
    /// Indirect descriptors were not negotiated but appeared.
    UnexpectedIndirect,
    /// An indirect table's length is not a whole number of descriptors
    /// (VirtIO 1.2 §2.7.5.3: the table is a descriptor array, so its
    /// length must be a multiple of 16).
    BadIndirectLen(u32),
}

/// Device-side state of one virtqueue.
#[derive(Clone, Debug)]
pub struct DeviceQueue {
    layout: VirtqueueLayout,
    /// Next avail entry to process.
    last_avail: u16,
    /// Our published used index.
    used_idx: u16,
    event_idx: bool,
    indirect: bool,
    /// Interrupts actually asserted.
    pub interrupts_sent: u64,
    /// Index this queue's vf-metrics instruments register under (the
    /// virtio queue number; devices with one queue leave it 0).
    metrics_index: u32,
    /// Whether the backlog gauge registers under the stall-watchdogged
    /// name. True for queues the host rings with work (TX); false for
    /// pre-posted buffer rings (RX, control), where a nonzero backlog
    /// with no used progress is the *idle* state, not a stall.
    metrics_watch_backlog: bool,
}

impl DeviceQueue {
    /// Device-side view of the queue at `layout`.
    pub fn new(layout: VirtqueueLayout, event_idx: bool, indirect: bool) -> Self {
        DeviceQueue {
            layout,
            last_avail: 0,
            used_idx: 0,
            event_idx,
            indirect,
            interrupts_sent: 0,
            metrics_index: 0,
            metrics_watch_backlog: false,
        }
    }

    /// Register this queue's metrics under `index` (the virtio queue
    /// number), so per-queue backlog/used/desc-read series stay
    /// distinguishable in multi-queue devices. `watch_backlog` marks a
    /// host-driven (TX) queue whose backlog gauge the stall watchdog
    /// monitors; leave it false for pre-posted rings.
    pub fn set_metrics_index(&mut self, index: u32, watch_backlog: bool) {
        self.metrics_index = index;
        self.metrics_watch_backlog = watch_backlog;
    }

    /// The name the backlog gauge registers under for this queue.
    fn backlog_gauge(&self) -> &'static str {
        if self.metrics_watch_backlog {
            vf_metrics::names::QUEUE_BACKLOG
        } else {
            "virtio.queue.rx_buffers"
        }
    }

    /// The queue's layout.
    pub fn layout(&self) -> &VirtqueueLayout {
        &self.layout
    }

    /// Our next unprocessed avail position.
    pub fn last_avail(&self) -> u16 {
        self.last_avail
    }

    /// Our published used index.
    pub fn used_idx(&self) -> u16 {
        self.used_idx
    }

    // ---- step-wise accessors (each = one timed DMA read on the FPGA) ----

    /// Read the driver's current avail index (2-byte read).
    pub fn fetch_avail_idx<M: GuestMemory>(&self, mem: &M) -> u16 {
        let idx = mem.read_u16(self.layout.avail_idx_addr());
        if vf_metrics::is_enabled() {
            // The freshest view of the backlog the device can have: on
            // TX queues the stall watchdog keys on this gauge staying
            // nonzero while the used counter below stands still.
            vf_metrics::gauge_set(
                self.backlog_gauge(),
                self.metrics_index,
                idx.wrapping_sub(self.last_avail) as i64,
            );
        }
        idx
    }

    /// Read the avail ring entry for position `pos` (2-byte read).
    pub fn fetch_avail_entry<M: GuestMemory>(&self, mem: &M, pos: u16) -> u16 {
        mem.read_u16(self.layout.avail_ring_addr(pos % self.layout.size))
    }

    /// Read one descriptor (16-byte read).
    pub fn fetch_desc<M: GuestMemory>(&self, mem: &M, idx: u16) -> Desc {
        vf_metrics::counter_add("virtio.queue.desc_reads", self.metrics_index, 1);
        Desc::read_at(mem, self.layout.desc, idx)
    }

    /// Pending chains: how far the driver's avail index is ahead of us.
    pub fn pending<M: GuestMemory>(&self, mem: &M) -> u16 {
        self.fetch_avail_idx(mem).wrapping_sub(self.last_avail)
    }

    /// Resolve the descriptor chain at avail position `pos` without
    /// consuming it. Returns the chain and the number of descriptor
    /// fetches performed (for DMA accounting). Handles indirect tables if
    /// negotiated.
    pub fn resolve_at<M: GuestMemory>(
        &self,
        mem: &M,
        pos: u16,
    ) -> Result<(Chain, usize), ChainError> {
        let head = self.fetch_avail_entry(mem, pos);
        let mut fetches = 0usize;
        let mut bufs = Vec::new();
        let mut idx = head;
        let limit = self.layout.size as usize;
        loop {
            if idx >= self.layout.size {
                return Err(ChainError::BadIndex(idx));
            }
            if bufs.len() >= limit {
                return Err(ChainError::TooLong);
            }
            let d = self.fetch_desc(mem, idx);
            fetches += 1;
            if d.flags & DESC_F_INDIRECT != 0 {
                if !self.indirect {
                    return Err(ChainError::UnexpectedIndirect);
                }
                // One indirect table holds the whole chain. A length
                // that is not a multiple of the descriptor size is a
                // malformed table, not a table to round down: silently
                // truncating would drop the trailing partial descriptor.
                if !d.len.is_multiple_of(Desc::SIZE as u32) {
                    return Err(ChainError::BadIndirectLen(d.len));
                }
                let count = (d.len / Desc::SIZE as u32) as usize;
                if count == 0 || count > limit {
                    return Err(ChainError::TooLong);
                }
                for i in 0..count {
                    let e = Desc::read_at(mem, d.addr, i as u16);
                    vf_metrics::counter_add("virtio.queue.desc_reads", self.metrics_index, 1);
                    fetches += 1;
                    bufs.push(ChainBuf {
                        addr: e.addr,
                        len: e.len,
                        writable: e.is_write(),
                    });
                }
                break;
            }
            bufs.push(ChainBuf {
                addr: d.addr,
                len: d.len,
                writable: d.is_write(),
            });
            if !d.has_next() {
                break;
            }
            idx = d.next;
        }
        Ok((Chain { head, bufs }, fetches))
    }

    /// Consume the next pending chain, if any.
    pub fn pop_chain<M: GuestMemory>(&mut self, mem: &M) -> Result<Option<Chain>, ChainError> {
        if self.pending(mem) == 0 {
            return Ok(None);
        }
        let (chain, _) = self.resolve_at(mem, self.last_avail)?;
        self.advance();
        Ok(Some(chain))
    }

    /// Advance past one avail entry without resolving (used by the FPGA
    /// controller, which resolves step-wise itself).
    pub fn advance(&mut self) {
        self.last_avail = self.last_avail.wrapping_add(1);
        if vf_metrics::is_enabled() {
            vf_metrics::gauge_add(self.backlog_gauge(), self.metrics_index, -1);
        }
    }

    /// Publish a completion: used ring entry + index. `written` is the
    /// number of bytes written into the chain's writable buffers. Returns
    /// the previous used index (needed for the interrupt decision).
    pub fn complete<M: GuestMemory>(&mut self, mem: &mut M, head: u16, written: u32) -> u16 {
        let old = self.used_idx;
        let slot = self.used_idx % self.layout.size;
        let entry = self.layout.used_ring_addr(slot);
        mem.write_u32(entry, head as u32);
        mem.write_u32(entry + 4, written);
        self.used_idx = self.used_idx.wrapping_add(1);
        mem.write_u16(self.layout.used_idx_addr(), self.used_idx);
        vf_metrics::counter_add(vf_metrics::names::QUEUE_USED, self.metrics_index, 1);
        if self.event_idx {
            // Ask to be notified once the driver publishes anything beyond
            // what we've seen — the standard low-latency device policy.
            mem.write_u16(self.layout.avail_event_addr(), self.last_avail);
        }
        old
    }

    /// After completing (used idx moved from `old_used` to the current
    /// value), should the device interrupt?
    pub fn should_interrupt<M: GuestMemory>(&mut self, mem: &M, old_used: u16) -> bool {
        let fire = if self.event_idx {
            let used_event = mem.read_u16(self.layout.used_event_addr());
            vring_need_event(used_event, self.used_idx, old_used)
        } else {
            mem.read_u16(self.layout.avail_flags_addr()) & AVAIL_F_NO_INTERRUPT == 0
        };
        if fire {
            self.interrupts_sent += 1;
        }
        fire
    }

    /// Set/clear `USED_F_NO_NOTIFY` (device-side doorbell suppression
    /// while it is already processing).
    pub fn set_no_notify<M: GuestMemory>(&self, mem: &mut M, suppress: bool) {
        mem.write_u16(
            self.layout.used_flags_addr(),
            if suppress { USED_F_NO_NOTIFY } else { 0 },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver_queue::{BufferSpec, DriverQueue};
    use crate::mem::VecMemory;
    use crate::ring::DESC_F_NEXT;

    fn setup(size: u16, event_idx: bool) -> (VecMemory, DriverQueue, DeviceQueue) {
        let mut mem = VecMemory::new(1 << 20);
        let layout = VirtqueueLayout::contiguous(0x1000, size);
        let drv = DriverQueue::new(&mut mem, layout, event_idx);
        let dev = DeviceQueue::new(layout, event_idx, false);
        (mem, drv, dev)
    }

    #[test]
    fn device_sees_published_chain() {
        let (mut mem, mut drv, mut dev) = setup(8, false);
        assert_eq!(dev.pending(&mem), 0);
        drv.add_and_publish(
            &mut mem,
            &[
                BufferSpec::readable(0x5000, 100),
                BufferSpec::writable(0x6000, 200),
            ],
        )
        .unwrap();
        assert_eq!(dev.pending(&mem), 1);
        let chain = dev.pop_chain(&mem).unwrap().unwrap();
        assert_eq!(chain.bufs.len(), 2);
        assert_eq!(chain.readable_len(), 100);
        assert_eq!(chain.writable_len(), 200);
        assert_eq!(dev.pending(&mem), 0);
    }

    #[test]
    fn complete_round_trip_to_driver() {
        let (mut mem, mut drv, mut dev) = setup(8, false);
        let head = drv
            .add_and_publish(&mut mem, &[BufferSpec::writable(0x5000, 64)])
            .unwrap();
        let chain = dev.pop_chain(&mem).unwrap().unwrap();
        assert_eq!(chain.head, head);
        let old = dev.complete(&mut mem, chain.head, 42);
        assert!(dev.should_interrupt(&mem, old));
        let used = drv.pop_used(&mut mem).unwrap();
        assert_eq!(used.id, head as u32);
        assert_eq!(used.len, 42);
    }

    #[test]
    fn interrupt_suppressed_by_avail_flag() {
        let (mut mem, mut drv, mut dev) = setup(8, false);
        drv.set_no_interrupt(&mut mem, true);
        let head = drv
            .add_and_publish(&mut mem, &[BufferSpec::readable(0, 8)])
            .unwrap();
        let old = dev.complete(&mut mem, head, 0);
        assert!(!dev.should_interrupt(&mem, old));
        assert_eq!(dev.interrupts_sent, 0);
    }

    #[test]
    fn event_idx_interrupt_gating() {
        let (mut mem, mut drv, mut dev) = setup(8, true);
        // Driver consumed nothing; used_event = 0 → first completion
        // (0→1) fires.
        let h0 = drv
            .add_and_publish(&mut mem, &[BufferSpec::readable(0, 8)])
            .unwrap();
        let h1 = drv
            .add_and_publish(&mut mem, &[BufferSpec::readable(8, 8)])
            .unwrap();
        dev.pop_chain(&mem).unwrap().unwrap();
        dev.pop_chain(&mem).unwrap().unwrap();
        let old = dev.complete(&mut mem, h0, 0);
        assert!(dev.should_interrupt(&mem, old));
        // Driver hasn't consumed (used_event still 0): second completion
        // (1→2) does not cross it again.
        let old = dev.complete(&mut mem, h1, 0);
        assert!(!dev.should_interrupt(&mem, old));
    }

    #[test]
    fn step_wise_resolution_counts_fetches() {
        let (mut mem, mut drv, dev) = setup(8, false);
        drv.add_and_publish(
            &mut mem,
            &[
                BufferSpec::readable(0x100, 10),
                BufferSpec::readable(0x200, 10),
                BufferSpec::writable(0x300, 10),
            ],
        )
        .unwrap();
        let (chain, fetches) = dev.resolve_at(&mem, 0).unwrap();
        assert_eq!(chain.desc_count(), 3);
        assert_eq!(fetches, 3, "one descriptor fetch per chain element");
    }

    #[test]
    fn corrupt_loop_detected() {
        let (mut mem, _drv, dev) = setup(4, false);
        // Hand-build a descriptor loop: 0 → 1 → 0 and an avail entry.
        Desc {
            addr: 0,
            len: 4,
            flags: DESC_F_NEXT,
            next: 1,
        }
        .write_at(&mut mem, dev.layout().desc, 0);
        Desc {
            addr: 0,
            len: 4,
            flags: DESC_F_NEXT,
            next: 0,
        }
        .write_at(&mut mem, dev.layout().desc, 1);
        mem.write_u16(dev.layout().avail_ring_addr(0), 0);
        mem.write_u16(dev.layout().avail_idx_addr(), 1);
        assert_eq!(dev.resolve_at(&mem, 0).unwrap_err(), ChainError::TooLong);
    }

    #[test]
    fn bad_index_detected() {
        let (mut mem, _drv, dev) = setup(4, false);
        mem.write_u16(dev.layout().avail_ring_addr(0), 9); // ≥ size
        mem.write_u16(dev.layout().avail_idx_addr(), 1);
        assert_eq!(
            dev.resolve_at(&mem, 0).unwrap_err(),
            ChainError::BadIndex(9)
        );
    }

    #[test]
    fn indirect_chain_resolves_when_negotiated() {
        let mut mem = VecMemory::new(1 << 20);
        let layout = VirtqueueLayout::contiguous(0x1000, 8);
        let mut drv = DriverQueue::new(&mut mem, layout, false);
        let dev = DeviceQueue::new(layout, false, true);
        // Build an indirect table of 3 descriptors at 0x8000.
        for (i, (addr, len, write)) in [
            (0x100u64, 16u32, false),
            (0x200, 16, false),
            (0x300, 32, true),
        ]
        .iter()
        .enumerate()
        {
            let write_flag = if *write { crate::ring::DESC_F_WRITE } else { 0 };
            let next_flag = if i < 2 { DESC_F_NEXT } else { 0 };
            Desc {
                addr: *addr,
                len: *len,
                flags: write_flag | next_flag,
                next: if i < 2 { i as u16 + 1 } else { 0 },
            }
            .write_at(&mut mem, 0x8000, i as u16);
        }
        // Publish a single descriptor pointing at the table.
        let head = drv
            .add_chain(&mut mem, &[BufferSpec::readable(0x8000, 3 * 16)])
            .unwrap();
        // Flip on the INDIRECT flag by rewriting the descriptor.
        let mut d = Desc::read_at(&mem, layout.desc, head);
        d.flags |= DESC_F_INDIRECT;
        d.write_at(&mut mem, layout.desc, head);
        drv.publish(&mut mem, head);

        let (chain, fetches) = dev.resolve_at(&mem, 0).unwrap();
        assert_eq!(chain.desc_count(), 3);
        assert_eq!(fetches, 4); // 1 main + 3 indirect
        assert_eq!(chain.writable_len(), 32);
    }

    #[test]
    fn indirect_partial_descriptor_len_is_malformed() {
        // Regression: a table length that is not a multiple of 16 used to
        // round down, silently ignoring the trailing partial descriptor.
        let mut mem = VecMemory::new(1 << 20);
        let layout = VirtqueueLayout::contiguous(0x1000, 8);
        let mut drv = DriverQueue::new(&mut mem, layout, false);
        let dev = DeviceQueue::new(layout, false, true);
        for i in 0..2u16 {
            Desc {
                addr: 0x100 + i as u64 * 0x100,
                len: 16,
                flags: if i == 0 { DESC_F_NEXT } else { 0 },
                next: if i == 0 { 1 } else { 0 },
            }
            .write_at(&mut mem, 0x8000, i);
        }
        // 2 whole descriptors plus 8 trailing bytes: malformed.
        let head = drv
            .add_chain(&mut mem, &[BufferSpec::readable(0x8000, 2 * 16 + 8)])
            .unwrap();
        let mut d = Desc::read_at(&mem, layout.desc, head);
        d.flags |= DESC_F_INDIRECT;
        d.write_at(&mut mem, layout.desc, head);
        drv.publish(&mut mem, head);
        assert_eq!(
            dev.resolve_at(&mem, 0).unwrap_err(),
            ChainError::BadIndirectLen(2 * 16 + 8)
        );
    }

    #[test]
    fn indirect_rejected_when_not_negotiated() {
        let (mut mem, mut drv, dev) = setup(8, false);
        let head = drv
            .add_chain(&mut mem, &[BufferSpec::readable(0x8000, 16)])
            .unwrap();
        let mut d = Desc::read_at(&mem, dev.layout().desc, head);
        d.flags |= DESC_F_INDIRECT;
        d.write_at(&mut mem, dev.layout().desc, head);
        drv.publish(&mut mem, head);
        assert_eq!(
            dev.resolve_at(&mem, 0).unwrap_err(),
            ChainError::UnexpectedIndirect
        );
    }

    #[test]
    fn full_pipeline_with_wrap() {
        let (mut mem, mut drv, mut dev) = setup(2, false);
        for i in 0..10u32 {
            let head = drv
                .add_and_publish(&mut mem, &[BufferSpec::writable(0x4000, 16)])
                .unwrap();
            let chain = dev.pop_chain(&mem).unwrap().unwrap();
            assert_eq!(chain.head, head);
            let old = dev.complete(&mut mem, chain.head, i);
            let _ = dev.should_interrupt(&mem, old);
            let used = drv.pop_used(&mut mem).unwrap();
            assert_eq!(used.len, i);
        }
        assert_eq!(dev.used_idx(), 10);
        assert_eq!(drv.num_free(), 2);
    }
}
