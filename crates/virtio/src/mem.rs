//! Guest memory abstraction.
//!
//! Virtqueues are plain little-endian data structures in *host* memory
//! that both sides manipulate: the driver through ordinary stores, the
//! device through DMA. Everything in this crate therefore operates
//! through the [`GuestMemory`] trait rather than Rust references — the
//! same ring code runs over the testbed's simulated host DRAM
//! ([`vf_pcie::HostMemory`]) and over a plain byte vector in unit tests.
//!
//! The trait deliberately mirrors what a bus master can actually do:
//! byte-level reads and writes at physical addresses. All multi-byte
//! accessors are little-endian, as the VirtIO spec requires for modern
//! devices regardless of guest endianness.

use vf_pcie::HostMemory;

/// Byte-addressable little-endian memory, as seen from a bus master.
pub trait GuestMemory {
    /// Read `buf.len()` bytes at `addr`.
    fn read(&self, addr: u64, buf: &mut [u8]);
    /// Write `data` at `addr`.
    fn write(&mut self, addr: u64, data: &[u8]);

    /// Read a little-endian `u16`.
    fn read_u16(&self, addr: u64) -> u16 {
        let mut b = [0u8; 2];
        self.read(addr, &mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn read_u32(&self, addr: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write a little-endian `u16`.
    fn write_u16(&mut self, addr: u64, v: u16) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Write a little-endian `u32`.
    fn write_u32(&mut self, addr: u64, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Read `len` bytes into a fresh vector.
    fn read_vec(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.read(addr, &mut v);
        v
    }
}

impl GuestMemory for HostMemory {
    fn read(&self, addr: u64, buf: &mut [u8]) {
        HostMemory::read(self, addr, buf);
    }

    fn write(&mut self, addr: u64, data: &[u8]) {
        HostMemory::write(self, addr, data);
    }
}

/// A simple vector-backed memory for unit and property tests.
#[derive(Clone, Debug)]
pub struct VecMemory {
    bytes: Vec<u8>,
}

impl VecMemory {
    /// Zeroed memory of `len` bytes based at address 0.
    pub fn new(len: usize) -> Self {
        VecMemory {
            bytes: vec![0; len],
        }
    }

    /// Underlying bytes (for assertions on exact layout).
    pub fn raw(&self) -> &[u8] {
        &self.bytes
    }
}

impl GuestMemory for VecMemory {
    fn read(&self, addr: u64, buf: &mut [u8]) {
        let a = addr as usize;
        buf.copy_from_slice(&self.bytes[a..a + buf.len()]);
    }

    fn write(&mut self, addr: u64, data: &[u8]) {
        let a = addr as usize;
        self.bytes[a..a + data.len()].copy_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_memory_round_trip() {
        let mut m = VecMemory::new(64);
        m.write_u16(0, 0xBEEF);
        m.write_u32(4, 0x1234_5678);
        m.write_u64(8, u64::MAX - 1);
        assert_eq!(m.read_u16(0), 0xBEEF);
        assert_eq!(m.read_u32(4), 0x1234_5678);
        assert_eq!(m.read_u64(8), u64::MAX - 1);
        assert_eq!(m.read_vec(0, 2), vec![0xEF, 0xBE]);
    }

    #[test]
    fn host_memory_implements_guest_memory() {
        let mut m = HostMemory::new(0x1000, 4096);
        GuestMemory::write_u32(&mut m, 0x1010, 77);
        assert_eq!(GuestMemory::read_u32(&m, 0x1010), 77);
    }

    #[test]
    fn little_endian_on_the_wire() {
        let mut m = VecMemory::new(16);
        m.write_u32(0, 0x0A0B_0C0D);
        assert_eq!(&m.raw()[0..4], &[0x0D, 0x0C, 0x0B, 0x0A]);
    }
}
