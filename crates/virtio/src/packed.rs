//! Packed virtqueue layout (VirtIO 1.2 §2.8) — extension.
//!
//! The paper's FPGA framework implements the *split* layout; the packed
//! layout is its designed successor: a single descriptor ring written by
//! both sides, so the device learns about a new buffer with **one**
//! memory read (the descriptor itself carries the availability flag)
//! instead of the split layout's avail-index + avail-entry + descriptor
//! chain walk. For a PCIe device paying ~1.5 µs per read round trip,
//! that is exactly the kind of hardware-latency saving the paper's
//! Fig. 4 motivates — quantified structurally by
//! [`dma_ops_per_transfer`].
//!
//! Layout: `N` 16-byte descriptors
//! `{ le64 addr; le32 len; le16 id; le16 flags }`, plus driver and
//! device event-suppression structures (not modeled — the testbed's
//! interrupt policy lives at a higher layer). Both sides keep a wrap
//! counter starting at 1; a flipped AVAIL/USED flag pair encodes
//! ownership:
//!
//! * driver makes a descriptor available: `AVAIL = wrap`, `USED = !wrap`;
//! * device marks it used: `AVAIL = USED = wrap(device)`.

use crate::driver_queue::QueueError;
use crate::mem::GuestMemory;

/// Packed-descriptor flag: buffer continues in the next descriptor.
pub const PACKED_F_NEXT: u16 = 1;
/// Packed-descriptor flag: device-writable buffer.
pub const PACKED_F_WRITE: u16 = 2;
/// AVAIL ownership bit (bit 7).
pub const PACKED_F_AVAIL: u16 = 1 << 7;
/// USED ownership bit (bit 15).
pub const PACKED_F_USED: u16 = 1 << 15;

/// One packed descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackedDesc {
    /// Buffer guest-physical address.
    pub addr: u64,
    /// Buffer length (or written length on the used side).
    pub len: u32,
    /// Buffer id (driver-chosen; echoed by the device).
    pub id: u16,
    /// Flags + ownership bits.
    pub flags: u16,
}

impl PackedDesc {
    /// Encoded size.
    pub const SIZE: u64 = 16;

    /// Read entry `slot` of the ring at `ring`.
    pub fn read_at<M: GuestMemory>(mem: &M, ring: u64, slot: u16) -> Self {
        let base = ring + slot as u64 * Self::SIZE;
        PackedDesc {
            addr: mem.read_u64(base),
            len: mem.read_u32(base + 8),
            id: mem.read_u16(base + 12),
            flags: mem.read_u16(base + 14),
        }
    }

    /// Write as entry `slot`. The flags word is written last in the
    /// byte stream (the ownership-publishing store).
    pub fn write_at<M: GuestMemory>(&self, mem: &mut M, ring: u64, slot: u16) {
        let base = ring + slot as u64 * Self::SIZE;
        mem.write_u64(base, self.addr);
        mem.write_u32(base + 8, self.len);
        mem.write_u16(base + 12, self.id);
        mem.write_u16(base + 14, self.flags);
    }

    /// Is this descriptor available to the device, given the device's
    /// current wrap counter?
    pub fn is_avail(&self, wrap: bool) -> bool {
        let avail = self.flags & PACKED_F_AVAIL != 0;
        let used = self.flags & PACKED_F_USED != 0;
        avail == wrap && used != wrap
    }

    /// Has the device marked this descriptor used, from the driver's
    /// wrap perspective?
    pub fn is_used(&self, wrap: bool) -> bool {
        let avail = self.flags & PACKED_F_AVAIL != 0;
        let used = self.flags & PACKED_F_USED != 0;
        avail == wrap && used == wrap
    }
}

/// A buffer to add (mirrors the split queue's `BufferSpec`).
#[derive(Clone, Copy, Debug)]
pub struct PackedBuffer {
    /// Guest-physical address.
    pub addr: u64,
    /// Length.
    pub len: u32,
    /// Device-writable?
    pub writable: bool,
}

/// Driver side of a packed queue.
#[derive(Clone, Debug)]
pub struct PackedDriverQueue {
    ring: u64,
    size: u16,
    avail_slot: u16,
    avail_wrap: bool,
    used_slot: u16,
    used_wrap: bool,
    free: u16,
    next_id: u16,
    /// Chain length by id, to free the right number of slots.
    chain_len: Vec<u16>,
}

/// Device side of a packed queue.
#[derive(Clone, Debug)]
pub struct PackedDeviceQueue {
    ring: u64,
    size: u16,
    slot: u16,
    wrap: bool,
    /// Index this queue's vf-metrics instruments register under.
    metrics_index: u32,
}

/// A chain taken by the device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedChain {
    /// Buffer id (from the chain's last descriptor).
    pub id: u16,
    /// The buffers in order: `(addr, len, writable)`.
    pub bufs: Vec<(u64, u32, bool)>,
    /// Ring slot the used entry must be written to.
    pub start_slot: u16,
    /// Wrap value for the used entry.
    pub wrap: bool,
}

/// A used element harvested by the driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackedUsed {
    /// Buffer id.
    pub id: u16,
    /// Bytes written by the device.
    pub len: u32,
}

impl PackedDriverQueue {
    /// Driver state over a zeroed ring of `size` descriptors at `ring`.
    pub fn new(ring: u64, size: u16) -> Self {
        assert!(size.is_power_of_two() && size >= 1);
        PackedDriverQueue {
            ring,
            size,
            avail_slot: 0,
            avail_wrap: true,
            used_slot: 0,
            used_wrap: true,
            free: size,
            next_id: 0,
            chain_len: vec![0; size as usize],
        }
    }

    /// Free descriptor slots.
    pub fn num_free(&self) -> u16 {
        self.free
    }

    /// Add a chain; returns its buffer id, or `None` if the ring is
    /// full. The head descriptor's ownership flags are written last (a
    /// real driver orders them with a write barrier).
    pub fn add<M: GuestMemory>(&mut self, mem: &mut M, bufs: &[PackedBuffer]) -> Option<u16> {
        let n = bufs.len() as u16;
        if n == 0 || n > self.free {
            return None;
        }
        let id = self.next_id;
        self.next_id = (self.next_id + 1) % self.size;
        let head_slot = self.avail_slot;
        let head_wrap = self.avail_wrap;
        for (i, buf) in bufs.iter().enumerate() {
            let last = i + 1 == bufs.len();
            let slot = self.avail_slot;
            let wrap = self.avail_wrap;
            let mut flags = 0u16;
            if buf.writable {
                flags |= PACKED_F_WRITE;
            }
            if !last {
                flags |= PACKED_F_NEXT;
            }
            // Ownership bits: AVAIL = wrap, USED = !wrap.
            if wrap {
                flags |= PACKED_F_AVAIL;
            } else {
                flags |= PACKED_F_USED;
            }
            // The head descriptor is made available only after the rest
            // of the chain is in place.
            let is_head = i == 0;
            let desc = PackedDesc {
                addr: buf.addr,
                len: buf.len,
                id,
                flags,
            };
            if is_head && bufs.len() > 1 {
                // Write head without ownership first; fix up after.
                let mut hidden = desc;
                // Invert AVAIL so it is not yet available.
                hidden.flags ^= PACKED_F_AVAIL;
                hidden.write_at(mem, self.ring, slot);
            } else {
                desc.write_at(mem, self.ring, slot);
            }
            self.advance_avail();
        }
        if bufs.len() > 1 {
            // Publish the head (flip AVAIL to the correct value).
            let mut head = PackedDesc::read_at(mem, self.ring, head_slot);
            head.flags ^= PACKED_F_AVAIL;
            let _ = head_wrap;
            head.write_at(mem, self.ring, head_slot);
        }
        self.free -= n;
        self.chain_len[id as usize] = n;
        Some(id)
    }

    /// Add a burst of chains in one call — the packed-layout counterpart
    /// of the split queue's `publish_batch`. Returns the buffer ids in
    /// order.
    ///
    /// Guarded the same way: a batch whose total descriptor count exceeds
    /// the free slots would lap the ring and overwrite descriptors the
    /// same burst just made available, so it is rejected before touching
    /// memory ([`QueueError::NoSpace`]); a batch containing an empty
    /// chain is rejected with [`QueueError::EmptyChain`].
    pub fn add_batch<M: GuestMemory>(
        &mut self,
        mem: &mut M,
        chains: &[&[PackedBuffer]],
    ) -> Result<Vec<u16>, QueueError> {
        let total: usize = chains.iter().map(|c| c.len()).sum();
        if chains.iter().any(|c| c.is_empty()) {
            return Err(QueueError::EmptyChain);
        }
        if total > self.free as usize {
            return Err(QueueError::NoSpace {
                needed: total.try_into().unwrap_or(u16::MAX),
                free: self.free,
            });
        }
        let mut ids = Vec::with_capacity(chains.len());
        for chain in chains {
            let id = self
                .add(mem, chain)
                .expect("batch pre-checked against free slots");
            ids.push(id);
        }
        Ok(ids)
    }

    fn advance_avail(&mut self) {
        self.avail_slot += 1;
        if self.avail_slot == self.size {
            self.avail_slot = 0;
            self.avail_wrap = !self.avail_wrap;
        }
    }

    /// Harvest one used element, if present.
    pub fn pop_used<M: GuestMemory>(&mut self, mem: &M) -> Option<PackedUsed> {
        let desc = PackedDesc::read_at(mem, self.ring, self.used_slot);
        if !desc.is_used(self.used_wrap) {
            return None;
        }
        let id = desc.id;
        let n = self.chain_len[id as usize];
        assert!(n > 0, "used id {id} was never added");
        self.chain_len[id as usize] = 0;
        // The device consumed n slots starting here.
        for _ in 0..n {
            self.used_slot += 1;
            if self.used_slot == self.size {
                self.used_slot = 0;
                self.used_wrap = !self.used_wrap;
            }
        }
        self.free += n;
        Some(PackedUsed { id, len: desc.len })
    }
}

impl PackedDeviceQueue {
    /// Device state over the ring at `ring`.
    pub fn new(ring: u64, size: u16) -> Self {
        assert!(size.is_power_of_two() && size >= 1);
        PackedDeviceQueue {
            ring,
            size,
            slot: 0,
            wrap: true,
            metrics_index: 0,
        }
    }

    /// Register this queue's metrics under `index` (the virtio queue
    /// number). Packed rings have no separate avail index, so only the
    /// used and desc-read counters register — backlog is not observable
    /// without probing descriptor ownership bits.
    pub fn set_metrics_index(&mut self, index: u32) {
        self.metrics_index = index;
    }

    /// Ring base guest-physical address (device models need it to time
    /// the descriptor DMA they issue).
    pub fn ring_addr(&self) -> u64 {
        self.ring
    }

    /// Guest-physical address of descriptor `slot`.
    pub fn desc_addr(&self, slot: u16) -> u64 {
        self.ring + slot as u64 * PackedDesc::SIZE
    }

    /// The slot the device will examine next.
    pub fn next_slot(&self) -> u16 {
        self.slot
    }

    /// Take the next available chain, if any. One descriptor read per
    /// chain element — no separate avail structure (the packed layout's
    /// advantage for DMA devices).
    pub fn try_take<M: GuestMemory>(&mut self, mem: &M) -> Option<PackedChain> {
        let head = PackedDesc::read_at(mem, self.ring, self.slot);
        if !head.is_avail(self.wrap) {
            return None;
        }
        let start_slot = self.slot;
        let wrap = self.wrap;
        let mut bufs = Vec::new();
        let mut id;
        let mut guard = 0;
        loop {
            let d = PackedDesc::read_at(mem, self.ring, self.slot);
            vf_metrics::counter_add("virtio.queue.desc_reads", self.metrics_index, 1);
            bufs.push((d.addr, d.len, d.flags & PACKED_F_WRITE != 0));
            id = d.id;
            self.advance();
            guard += 1;
            assert!(guard <= self.size, "packed chain exceeds ring size");
            if d.flags & PACKED_F_NEXT == 0 {
                break;
            }
        }
        Some(PackedChain {
            id,
            bufs,
            start_slot,
            wrap,
        })
    }

    /// Take up to `max` available chains in one call — the fetch
    /// pattern of the pipelined walker (E20), which drains the window
    /// of published descriptors before overlapping their payload DMA,
    /// instead of polling one chain per FSM pass. Each element still
    /// costs the device one descriptor read; the caller times them.
    pub fn take_burst<M: GuestMemory>(&mut self, mem: &M, max: usize) -> Vec<PackedChain> {
        let mut chains = Vec::new();
        while chains.len() < max {
            match self.try_take(mem) {
                Some(c) => chains.push(c),
                None => break,
            }
        }
        chains
    }

    fn advance(&mut self) {
        self.slot += 1;
        if self.slot == self.size {
            self.slot = 0;
            self.wrap = !self.wrap;
        }
    }

    /// Publish a used entry for `chain`: a single descriptor write at
    /// the chain's start slot (AVAIL = USED = wrap).
    pub fn complete<M: GuestMemory>(&self, mem: &mut M, chain: &PackedChain, written: u32) {
        let mut flags = 0u16;
        if chain.wrap {
            flags |= PACKED_F_AVAIL | PACKED_F_USED;
        }
        PackedDesc {
            addr: 0,
            len: written,
            id: chain.id,
            flags,
        }
        .write_at(mem, self.ring, chain.start_slot);
        vf_metrics::counter_add(vf_metrics::names::QUEUE_USED, self.metrics_index, 1);
    }
}

/// Structural DMA-operation counts per request-response transfer, for
/// the split vs packed comparison (the extension ablation): `(reads,
/// writes)` the device performs against host memory for a chain of
/// `chain_len` descriptors, excluding the payload itself.
pub fn dma_ops_per_transfer(chain_len: usize, packed: bool) -> (usize, usize) {
    if packed {
        // Reads: one per descriptor (ownership rides in the flags).
        // Writes: one used descriptor.
        (chain_len, 1)
    } else {
        // Reads: avail idx + avail entry + one per descriptor.
        // Writes: used entry + used idx (+ avail_event under EVENT_IDX,
        // folded into the idx write here).
        (2 + chain_len, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::VecMemory;

    fn setup(size: u16) -> (VecMemory, PackedDriverQueue, PackedDeviceQueue) {
        let mem = VecMemory::new(1 << 20);
        (
            mem,
            PackedDriverQueue::new(0x1000, size),
            PackedDeviceQueue::new(0x1000, size),
        )
    }

    #[test]
    fn single_descriptor_round_trip() {
        let (mut mem, mut drv, mut dev) = setup(8);
        let id = drv
            .add(
                &mut mem,
                &[PackedBuffer {
                    addr: 0x5000,
                    len: 64,
                    writable: false,
                }],
            )
            .unwrap();
        assert_eq!(drv.num_free(), 7);
        let chain = dev.try_take(&mem).unwrap();
        assert_eq!(chain.id, id);
        assert_eq!(chain.bufs, vec![(0x5000, 64, false)]);
        dev.complete(&mut mem, &chain, 0);
        let used = drv.pop_used(&mem).unwrap();
        assert_eq!(used.id, id);
        assert_eq!(drv.num_free(), 8);
    }

    #[test]
    fn empty_ring_yields_nothing() {
        let (mem, mut drv, mut dev) = setup(4);
        assert!(dev.try_take(&mem).is_none());
        assert!(drv.pop_used(&mem).is_none());
    }

    #[test]
    fn chains_take_and_complete_atomically() {
        let (mut mem, mut drv, mut dev) = setup(8);
        let id = drv
            .add(
                &mut mem,
                &[
                    PackedBuffer {
                        addr: 0x5000,
                        len: 12,
                        writable: false,
                    },
                    PackedBuffer {
                        addr: 0x6000,
                        len: 100,
                        writable: false,
                    },
                    PackedBuffer {
                        addr: 0x7000,
                        len: 2048,
                        writable: true,
                    },
                ],
            )
            .unwrap();
        let chain = dev.try_take(&mem).unwrap();
        assert_eq!(chain.id, id);
        assert_eq!(chain.bufs.len(), 3);
        assert!(chain.bufs[2].2);
        dev.complete(&mut mem, &chain, 500);
        let used = drv.pop_used(&mem).unwrap();
        assert_eq!(used.len, 500);
        assert_eq!(drv.num_free(), 8);
    }

    #[test]
    fn wrap_counter_flips_correctly() {
        let (mut mem, mut drv, mut dev) = setup(4);
        // Push 25 single-descriptor transfers through a 4-slot ring:
        // forces 6+ wraps on both sides.
        for i in 0..25u32 {
            let id = drv
                .add(
                    &mut mem,
                    &[PackedBuffer {
                        addr: 0x5000 + i as u64 * 64,
                        len: 64,
                        writable: false,
                    }],
                )
                .unwrap();
            let chain = dev.try_take(&mem).unwrap();
            assert_eq!(chain.id, id);
            assert_eq!(chain.bufs[0].0, 0x5000 + i as u64 * 64);
            dev.complete(&mut mem, &chain, i);
            assert_eq!(drv.pop_used(&mem).unwrap().len, i);
        }
        assert_eq!(drv.num_free(), 4);
    }

    #[test]
    fn full_ring_rejects_add() {
        let (mut mem, mut drv, _dev) = setup(4);
        for _ in 0..4 {
            assert!(drv
                .add(
                    &mut mem,
                    &[PackedBuffer {
                        addr: 0,
                        len: 1,
                        writable: false
                    }]
                )
                .is_some());
        }
        assert!(drv
            .add(
                &mut mem,
                &[PackedBuffer {
                    addr: 0,
                    len: 1,
                    writable: false
                }]
            )
            .is_none());
    }

    #[test]
    fn head_published_last_for_chains() {
        // Before the head flip, a device polling mid-add must not see
        // the chain.
        let (mut mem, _drv, mut dev) = setup(8);
        // Manually write a 2-desc chain with the head still hidden.
        PackedDesc {
            addr: 0x5000,
            len: 8,
            id: 0,
            flags: PACKED_F_NEXT | PACKED_F_USED, // AVAIL clear with wrap=true → hidden
        }
        .write_at(&mut mem, 0x1000, 0);
        PackedDesc {
            addr: 0x6000,
            len: 8,
            id: 0,
            flags: PACKED_F_AVAIL, // tail in place
        }
        .write_at(&mut mem, 0x1000, 1);
        assert!(dev.try_take(&mem).is_none(), "hidden head must block");
        // Flip the head's AVAIL bit: now visible.
        let mut head = PackedDesc::read_at(&mem, 0x1000, 0);
        head.flags = (head.flags & !PACKED_F_USED) | PACKED_F_AVAIL;
        head.write_at(&mut mem, 0x1000, 0);
        assert!(dev.try_take(&mem).is_some());
    }

    #[test]
    fn interleaved_pipelining() {
        // Multiple chains in flight; completions in device order.
        let (mut mem, mut drv, mut dev) = setup(16);
        let mut ids = Vec::new();
        for i in 0..5u64 {
            ids.push(
                drv.add(
                    &mut mem,
                    &[PackedBuffer {
                        addr: 0x5000 + i * 256,
                        len: 256,
                        writable: false,
                    }],
                )
                .unwrap(),
            );
        }
        for expect in &ids {
            let chain = dev.try_take(&mem).unwrap();
            assert_eq!(chain.id, *expect);
            dev.complete(&mut mem, &chain, 0);
        }
        for expect in &ids {
            assert_eq!(drv.pop_used(&mem).unwrap().id, *expect);
        }
    }

    #[test]
    fn take_burst_drains_window_in_order() {
        let (mut mem, mut drv, mut dev) = setup(16);
        let mut ids = Vec::new();
        for i in 0..6u64 {
            ids.push(
                drv.add(
                    &mut mem,
                    &[PackedBuffer {
                        addr: 0x5000 + i * 128,
                        len: 128,
                        writable: false,
                    }],
                )
                .unwrap(),
            );
        }
        // Bounded burst takes the oldest chains, in publish order.
        let first = dev.take_burst(&mem, 4);
        assert_eq!(first.iter().map(|c| c.id).collect::<Vec<_>>(), ids[..4]);
        // The remainder (and nothing more) on the next burst.
        let rest = dev.take_burst(&mem, 16);
        assert_eq!(rest.iter().map(|c| c.id).collect::<Vec<_>>(), ids[4..]);
        assert!(dev.take_burst(&mem, 16).is_empty());
        for chain in first.iter().chain(&rest) {
            dev.complete(&mut mem, chain, 0);
        }
        for expect in &ids {
            assert_eq!(drv.pop_used(&mem).unwrap().id, *expect);
        }
    }

    #[test]
    fn add_batch_longer_than_ring_is_rejected() {
        // Same regression class as the split queue's publish_batch: a
        // burst with more descriptors than free slots must be rejected
        // atomically instead of lapping the ring.
        let (mut mem, mut drv, mut dev) = setup(4);
        let buf = |addr| PackedBuffer {
            addr,
            len: 64,
            writable: false,
        };
        let chains: Vec<[PackedBuffer; 1]> = (0..5).map(|i| [buf(0x5000 + i * 64)]).collect();
        let refs: Vec<&[PackedBuffer]> = chains.iter().map(|c| &c[..]).collect();
        let err = drv.add_batch(&mut mem, &refs).unwrap_err();
        assert_eq!(err, QueueError::NoSpace { needed: 5, free: 4 });
        // Nothing became visible to the device.
        assert_eq!(drv.num_free(), 4);
        assert!(dev.try_take(&mem).is_none());
        // A full-ring batch is still fine, and every chain is takeable.
        let ids = drv.add_batch(&mut mem, &refs[..4]).unwrap();
        assert_eq!(ids.len(), 4);
        for expect in &ids {
            let chain = dev.try_take(&mem).unwrap();
            assert_eq!(chain.id, *expect);
        }
    }

    #[test]
    fn add_batch_rejects_empty_chain() {
        let (mut mem, mut drv, _dev) = setup(4);
        let one = [PackedBuffer {
            addr: 0x5000,
            len: 8,
            writable: false,
        }];
        let err = drv.add_batch(&mut mem, &[&one, &[]]).unwrap_err();
        assert_eq!(err, QueueError::EmptyChain);
        assert_eq!(drv.num_free(), 4);
    }

    #[test]
    fn dma_op_counts_favor_packed() {
        // The structural argument for the extension: fewer device
        // round-trips per transfer.
        let (sr, sw) = dma_ops_per_transfer(2, false);
        let (pr, pw) = dma_ops_per_transfer(2, true);
        assert_eq!((sr, sw), (4, 2));
        assert_eq!((pr, pw), (2, 1));
        assert!(pr < sr && pw < sw);
    }
}
