//! virtio-net device type: header, features, device-specific config.
//!
//! The paper's main extension over \[14\] is implementing this device type
//! on the FPGA (§III-A): the device-specific configuration structure
//! (MAC, MTU, status, ...) plus RX/TX queues. Every packet on a
//! virtio-net queue is prefixed by `struct virtio_net_hdr`, which carries
//! the checksum/GSO offload contract between driver and device.

use crate::mem::GuestMemory;

/// Queue index of `receiveq1`.
pub const RX_QUEUE: u16 = 0;
/// Queue index of `transmitq1`.
pub const TX_QUEUE: u16 = 1;

/// virtio-net feature bits (VirtIO 1.2 §5.1.3).
pub mod feature {
    /// Device handles packets with partial checksum (TX csum offload).
    pub const CSUM: u64 = 1 << 0;
    /// Driver handles packets with partial checksum (RX csum offload).
    pub const GUEST_CSUM: u64 = 1 << 1;
    /// Device reports its MTU.
    pub const MTU: u64 = 1 << 3;
    /// Device has a MAC address in config space.
    pub const MAC: u64 = 1 << 5;
    /// Driver can merge receive buffers.
    pub const MRG_RXBUF: u64 = 1 << 15;
    /// Config `status` field is valid (link up/down).
    pub const STATUS: u64 = 1 << 16;
    /// Control virtqueue present.
    pub const CTRL_VQ: u64 = 1 << 17;
    /// Device supports multiple RX/TX queue pairs (VirtIO 1.2 §5.1.6.5.5).
    pub const MQ: u64 = 1 << 22;
    /// Device steers RX flows through a Toeplitz-hashed indirection
    /// table (VirtIO 1.2 §5.1.6.5.7, `VIRTIO_NET_F_RSS`).
    pub const RSS: u64 = 1 << 60;
}

/// Control-virtqueue command encoding (VirtIO 1.2 §5.1.6.5). A command
/// is a readable `{class, command}` header, readable command-specific
/// data, and one device-writable ack byte at the end of the chain.
pub mod ctrl {
    /// Command class: multiqueue configuration.
    pub const CLASS_MQ: u8 = 4;
    /// `CLASS_MQ` command: set the number of active queue pairs.
    pub const MQ_VQ_PAIRS_SET: u8 = 0;
    /// `CLASS_MQ` command: program the RSS indirection table + hash key
    /// (`VIRTIO_NET_F_RSS`). Command data (after the 2-byte header):
    /// `le16 table_len`, `table_len × le16` pair entries, `u8 key_len`,
    /// `key_len` key bytes.
    pub const MQ_RSS_CONFIG: u8 = 1;
    /// Ack byte: command accepted.
    pub const OK: u8 = 0;
    /// Ack byte: command rejected.
    pub const ERR: u8 = 1;
}

/// RSS indirection-table length the device supports (power of two; the
/// hash is masked with `RSS_TABLE_LEN - 1`).
pub const RSS_TABLE_LEN: usize = 128;

/// Toeplitz hash-key length (the 40-byte key of the Microsoft RSS
/// specification, sized for TCP/IPv6 tuples).
pub const RSS_KEY_LEN: usize = 40;

/// The de-facto standard Toeplitz key (Microsoft RSS verification
/// suite). Using the well-known key keeps the implementation checkable
/// against published test vectors.
pub const RSS_DEFAULT_KEY: [u8; RSS_KEY_LEN] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// Toeplitz hash (RSS): for each set bit of `data`, XOR in the 32-bit
/// window of `key` starting at that bit position. This is the matrix
/// formulation hardware implements as one XOR tree per input bit.
pub fn toeplitz_hash(key: &[u8], data: &[u8]) -> u32 {
    assert!(key.len() >= 4, "Toeplitz key shorter than the hash window");
    let mut hash = 0u32;
    let mut window = u32::from_be_bytes([key[0], key[1], key[2], key[3]]);
    for (i, &byte) in data.iter().enumerate() {
        for bit in 0..8 {
            if byte & (0x80 >> bit) != 0 {
                hash ^= window;
            }
            let next_bit = 32 + i * 8 + bit;
            let next = if next_bit / 8 < key.len() {
                (key[next_bit / 8] >> (7 - next_bit % 8)) & 1
            } else {
                0
            };
            window = (window << 1) | next as u32;
        }
    }
    hash
}

/// Queue index of `receiveqN` for pair `n` (0-based).
pub fn rx_queue_of_pair(pair: u16) -> u16 {
    2 * pair
}

/// Queue index of `transmitqN` for pair `n` (0-based).
pub fn tx_queue_of_pair(pair: u16) -> u16 {
    2 * pair + 1
}

/// Queue index of the control virtqueue when the device exposes
/// `max_pairs` queue pairs (the ctrl queue is always last, §5.1.2).
pub fn ctrl_queue_index(max_pairs: u16) -> u16 {
    2 * max_pairs
}

/// `virtio_net_config.status` bit: link is up.
pub const NET_S_LINK_UP: u16 = 1;

/// `virtio_net_hdr.flags`: checksum must be completed by the receiver.
pub const HDR_F_NEEDS_CSUM: u8 = 1;
/// `virtio_net_hdr.flags`: checksum already validated by the device.
pub const HDR_F_DATA_VALID: u8 = 2;

/// `virtio_net_hdr.gso_type`: no segmentation offload.
pub const GSO_NONE: u8 = 0;

/// `struct virtio_net_hdr` as it appears on every queue buffer
/// (VERSION_1 layout: `num_buffers` always present → 12 bytes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VirtioNetHdr {
    /// `HDR_F_*` flags.
    pub flags: u8,
    /// `GSO_*` type.
    pub gso_type: u8,
    /// Header length for GSO.
    pub hdr_len: u16,
    /// GSO segment size.
    pub gso_size: u16,
    /// Checksum start offset (NEEDS_CSUM).
    pub csum_start: u16,
    /// Checksum store offset relative to `csum_start`.
    pub csum_offset: u16,
    /// Buffers merged into this packet (MRG_RXBUF / VERSION_1).
    pub num_buffers: u16,
}

impl VirtioNetHdr {
    /// Encoded size.
    pub const LEN: usize = 12;

    /// Serialize (little endian).
    pub fn to_bytes(self) -> [u8; Self::LEN] {
        let mut b = [0u8; Self::LEN];
        b[0] = self.flags;
        b[1] = self.gso_type;
        b[2..4].copy_from_slice(&self.hdr_len.to_le_bytes());
        b[4..6].copy_from_slice(&self.gso_size.to_le_bytes());
        b[6..8].copy_from_slice(&self.csum_start.to_le_bytes());
        b[8..10].copy_from_slice(&self.csum_offset.to_le_bytes());
        b[10..12].copy_from_slice(&self.num_buffers.to_le_bytes());
        b
    }

    /// Deserialize.
    pub fn from_bytes(b: &[u8]) -> Self {
        assert!(b.len() >= Self::LEN);
        VirtioNetHdr {
            flags: b[0],
            gso_type: b[1],
            hdr_len: u16::from_le_bytes([b[2], b[3]]),
            gso_size: u16::from_le_bytes([b[4], b[5]]),
            csum_start: u16::from_le_bytes([b[6], b[7]]),
            csum_offset: u16::from_le_bytes([b[8], b[9]]),
            num_buffers: u16::from_le_bytes([b[10], b[11]]),
        }
    }

    /// Read a header from guest memory.
    pub fn read_from<M: GuestMemory>(mem: &M, addr: u64) -> Self {
        let mut b = [0u8; Self::LEN];
        mem.read(addr, &mut b);
        Self::from_bytes(&b)
    }

    /// Write this header into guest memory.
    pub fn write_to<M: GuestMemory>(&self, mem: &mut M, addr: u64) {
        mem.write(addr, &self.to_bytes());
    }
}

/// `struct virtio_net_config` — the device-specific configuration the
/// paper's §III-A calls out (MAC, MTU, offload capabilities, ...).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VirtioNetConfig {
    /// Station MAC address.
    pub mac: [u8; 6],
    /// Link status (`NET_S_LINK_UP`).
    pub status: u16,
    /// Max RX/TX queue pairs supported.
    pub max_virtqueue_pairs: u16,
    /// Device MTU.
    pub mtu: u16,
}

impl VirtioNetConfig {
    /// Encoded size of the fields we expose.
    pub const LEN: usize = 12;

    /// The testbed's default: locally-administered MAC, link up, one
    /// queue pair, standard Ethernet MTU.
    pub fn testbed_default() -> Self {
        VirtioNetConfig {
            mac: [0x02, 0xFB, 0x0A, 0x00, 0x00, 0x01],
            status: NET_S_LINK_UP,
            max_virtqueue_pairs: 1,
            mtu: 1500,
        }
    }

    /// A multiqueue variant of [`Self::testbed_default`]: same MAC/MTU,
    /// but advertising `pairs` RX/TX queue pairs.
    pub fn with_queue_pairs(pairs: u16) -> Self {
        assert!(pairs >= 1, "a net device has at least one queue pair");
        VirtioNetConfig {
            max_virtqueue_pairs: pairs,
            ..Self::testbed_default()
        }
    }

    /// Serialize to the config-space byte layout.
    pub fn to_bytes(self) -> [u8; Self::LEN] {
        let mut b = [0u8; Self::LEN];
        b[0..6].copy_from_slice(&self.mac);
        b[6..8].copy_from_slice(&self.status.to_le_bytes());
        b[8..10].copy_from_slice(&self.max_virtqueue_pairs.to_le_bytes());
        b[10..12].copy_from_slice(&self.mtu.to_le_bytes());
        b
    }

    /// MMIO read of `len` bytes at `off` within the device-config window.
    pub fn read(&self, off: u64, len: usize) -> u64 {
        let bytes = self.to_bytes();
        let mut v = 0u64;
        for i in 0..len.min(8) {
            let idx = off as usize + i;
            let byte = if idx < Self::LEN { bytes[idx] } else { 0 };
            v |= (byte as u64) << (8 * i);
        }
        v
    }
}

/// The Internet checksum (RFC 1071) used both by the host stack when
/// checksum offload is off and by the FPGA's checksum engine when it is
/// on. `initial` allows folding in a pseudo-header sum.
pub fn internet_checksum(data: &[u8], initial: u32) -> u16 {
    let mut sum = initial;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::VecMemory;

    #[test]
    fn hdr_round_trip() {
        let h = VirtioNetHdr {
            flags: HDR_F_NEEDS_CSUM,
            gso_type: GSO_NONE,
            hdr_len: 42,
            gso_size: 0,
            csum_start: 34,
            csum_offset: 6,
            num_buffers: 1,
        };
        assert_eq!(VirtioNetHdr::from_bytes(&h.to_bytes()), h);
    }

    #[test]
    fn hdr_memory_round_trip() {
        let mut m = VecMemory::new(64);
        let h = VirtioNetHdr {
            num_buffers: 3,
            ..Default::default()
        };
        h.write_to(&mut m, 16);
        assert_eq!(VirtioNetHdr::read_from(&m, 16), h);
    }

    #[test]
    fn hdr_is_twelve_bytes() {
        assert_eq!(VirtioNetHdr::LEN, 12);
        assert_eq!(VirtioNetHdr::default().to_bytes().len(), 12);
    }

    #[test]
    fn config_layout() {
        let c = VirtioNetConfig::testbed_default();
        let b = c.to_bytes();
        assert_eq!(&b[0..6], &c.mac);
        assert_eq!(u16::from_le_bytes([b[6], b[7]]), NET_S_LINK_UP);
        assert_eq!(u16::from_le_bytes([b[10], b[11]]), 1500);
    }

    #[test]
    fn config_mmio_reads() {
        let c = VirtioNetConfig::testbed_default();
        // MAC first dword.
        assert_eq!(
            c.read(0, 4),
            u32::from_le_bytes([0x02, 0xFB, 0x0A, 0x00]) as u64
        );
        // MTU as a u16 read.
        assert_eq!(c.read(10, 2), 1500);
        // Reads past the end return zeros.
        assert_eq!(c.read(12, 4), 0);
        // Straddling read.
        assert_eq!(c.read(11, 2) & 0xFF, (1500u16 >> 8) as u64);
    }

    #[test]
    fn mq_queue_numbering_follows_spec() {
        // §5.1.2: receiveq1..N at even indices, transmitq1..N at odd,
        // ctrl vq last.
        assert_eq!(rx_queue_of_pair(0), RX_QUEUE);
        assert_eq!(tx_queue_of_pair(0), TX_QUEUE);
        assert_eq!(rx_queue_of_pair(3), 6);
        assert_eq!(tx_queue_of_pair(3), 7);
        assert_eq!(ctrl_queue_index(1), 2);
        assert_eq!(ctrl_queue_index(4), 8);
    }

    #[test]
    fn config_reports_queue_pairs() {
        let c = VirtioNetConfig::with_queue_pairs(4);
        let b = c.to_bytes();
        assert_eq!(u16::from_le_bytes([b[8], b[9]]), 4);
        assert_eq!(c.read(8, 2), 4);
        // Everything else matches the single-queue default.
        assert_eq!(b[0..8], VirtioNetConfig::testbed_default().to_bytes()[0..8]);
    }

    #[test]
    fn toeplitz_matches_microsoft_vectors() {
        // RSS verification suite: 66.9.149.187:2794 → 161.142.100.80:1766.
        let src = [66u8, 9, 149, 187];
        let dst = [161u8, 142, 100, 80];
        let mut v4 = Vec::new();
        v4.extend_from_slice(&src);
        v4.extend_from_slice(&dst);
        assert_eq!(toeplitz_hash(&RSS_DEFAULT_KEY, &v4), 0x323e_8fc2);
        v4.extend_from_slice(&2794u16.to_be_bytes());
        v4.extend_from_slice(&1766u16.to_be_bytes());
        assert_eq!(toeplitz_hash(&RSS_DEFAULT_KEY, &v4), 0x51cc_c178);
    }

    #[test]
    fn toeplitz_spreads_testbed_flow_ports() {
        // The testbed's per-flow dst ports (40000 + i) must land in 16
        // distinct indirection slots so an identity-programmed table can
        // pin flow i to pair i.
        let mut slots: Vec<u32> = (0..16u16)
            .map(|i| toeplitz_hash(&RSS_DEFAULT_KEY, &(40000 + i).to_be_bytes()) & 127)
            .collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 16, "hash collision across testbed flows");
    }

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 example: 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0
        // → fold → 0xddf2 → complement 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data, 0), 0x220d);
    }

    #[test]
    fn checksum_appended_verifies_to_zero() {
        let data = [0x45, 0x00, 0x00, 0x1d, 0x12, 0x00];
        let csum = internet_checksum(&data, 0);
        let mut with = data.to_vec();
        with.extend_from_slice(&csum.to_be_bytes());
        assert_eq!(internet_checksum(&with, 0), 0);
    }

    #[test]
    fn checksum_odd_length_pads_high_byte() {
        // A single odd byte contributes as the high byte of a padded word.
        assert_eq!(
            internet_checksum(&[0x12], 0),
            internet_checksum(&[0x12, 0x00], 0)
        );
    }

    #[test]
    fn checksum_zero_data() {
        assert_eq!(internet_checksum(&[], 0), 0xFFFF);
    }
}
