//! A concurrent, shared-memory VirtIO transport.
//!
//! Everything else in this crate runs inside a single-threaded simulated
//! world. This module proves the ring implementation is a *real* VirtIO
//! implementation: the same [`DriverQueue`]/[`DeviceQueue`] code drives
//! an actual producer/consumer pair across OS threads over shared
//! memory, with the memory-ordering discipline the VirtIO spec requires
//! of driver and device ("suitable memory barriers", VirtIO 1.2 §2.7.13):
//!
//! * [`AtomicMemory`] — a [`GuestMemory`] over `AtomicU8` cells. Plain
//!   field accesses are `Relaxed`; the *protocol* supplies the ordering;
//! * [`publish_fence`] / [`observe_fence`] — the Release/Acquire fences
//!   each side issues between writing payload and publishing an index
//!   (and between reading an index and consuming payload), exactly where
//!   `virtio_wmb`/`virtio_rmb` sit in the kernel and where the FPGA
//!   design relies on PCIe ordering rules;
//! * [`LoopbackPair`] — wires a driver-side and a device-side endpoint
//!   to one queue in shared memory.
//!
//! This transport is also how a *software* back-end device (the classic
//! vhost-style worker) would consume the very same rings the FPGA
//! consumes over PCIe — the symmetry at the heart of the paper's
//! "unmodified VirtIO drivers" argument.

use std::sync::atomic::{fence, AtomicU8, Ordering};
use std::sync::Arc;

use crate::device_queue::{Chain, DeviceQueue};
use crate::driver_queue::{BufferSpec, DriverQueue};
use crate::mem::GuestMemory;
use crate::ring::VirtqueueLayout;

/// Shared memory as an array of atomic bytes.
///
/// All accesses are `Relaxed`: the VirtIO protocol's correctness comes
/// from the explicit fences at the publish/observe points, not from
/// per-access ordering — mirroring how the kernel accesses ring fields
/// with `READ_ONCE`/`WRITE_ONCE` plus explicit barriers.
pub struct AtomicMemory {
    cells: Box<[AtomicU8]>,
}

impl AtomicMemory {
    /// Zeroed shared memory of `len` bytes.
    pub fn new(len: usize) -> Arc<Self> {
        let cells: Vec<AtomicU8> = (0..len).map(|_| AtomicU8::new(0)).collect();
        Arc::new(AtomicMemory {
            cells: cells.into_boxed_slice(),
        })
    }

    /// Capacity in bytes.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if empty (degenerate).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// A handle through which one side accesses the shared memory. Cloning
/// shares the underlying cells.
#[derive(Clone)]
pub struct MemHandle {
    mem: Arc<AtomicMemory>,
}

impl MemHandle {
    /// Handle to `mem`.
    pub fn new(mem: Arc<AtomicMemory>) -> Self {
        MemHandle { mem }
    }
}

impl GuestMemory for MemHandle {
    fn read(&self, addr: u64, buf: &mut [u8]) {
        let base = addr as usize;
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.mem.cells[base + i].load(Ordering::Relaxed);
        }
    }

    fn write(&mut self, addr: u64, data: &[u8]) {
        let base = addr as usize;
        for (i, &b) in data.iter().enumerate() {
            self.mem.cells[base + i].store(b, Ordering::Relaxed);
        }
    }
}

/// The producer-side barrier: everything written before this fence
/// (descriptors, payload, ring entries) is visible to a consumer that
/// observes anything written after it (the index). `virtio_wmb`.
pub fn publish_fence() {
    fence(Ordering::Release);
}

/// The consumer-side barrier: after observing a new index, this fence
/// orders the subsequent payload reads. `virtio_rmb`.
pub fn observe_fence() {
    fence(Ordering::Acquire);
}

/// The driver endpoint of a loopback queue.
pub struct LoopbackDriver {
    /// Shared memory handle.
    pub mem: MemHandle,
    /// The driver-side queue state.
    pub queue: DriverQueue,
}

impl LoopbackDriver {
    /// Add and publish a chain with the required fence.
    pub fn send(&mut self, bufs: &[BufferSpec]) -> Result<u16, crate::driver_queue::QueueError> {
        let head = self.queue.add_chain(&mut self.mem, bufs)?;
        publish_fence();
        self.queue.publish(&mut self.mem, head);
        // The avail-idx store itself must be visible before any doorbell;
        // a second release fence models the ordering of the MMIO write.
        publish_fence();
        Ok(head)
    }

    /// Harvest one completion, if any, with the required fence.
    pub fn try_recv(&mut self) -> Option<crate::ring::UsedElem> {
        let pending = self.queue.used_pending(&self.mem);
        if pending == 0 {
            return None;
        }
        observe_fence();
        self.queue.pop_used(&mut self.mem)
    }
}

/// The device endpoint of a loopback queue.
pub struct LoopbackDevice {
    /// Shared memory handle.
    pub mem: MemHandle,
    /// The device-side queue state.
    pub queue: DeviceQueue,
}

impl LoopbackDevice {
    /// Take the next pending chain, if any, with the required fence.
    pub fn try_take(&mut self) -> Option<Chain> {
        if self.queue.pending(&self.mem) == 0 {
            return None;
        }
        observe_fence();
        self.queue.pop_chain(&self.mem).expect("well-formed chain")
    }

    /// Complete a chain (fence, then publish the used entry).
    pub fn complete(&mut self, head: u16, written: u32) {
        publish_fence();
        let old = self.queue.complete(&mut self.mem, head, written);
        let _ = self.queue.should_interrupt(&self.mem, old);
    }
}

/// A connected driver/device pair over one shared queue.
pub struct LoopbackPair {
    /// Driver endpoint.
    pub driver: LoopbackDriver,
    /// Device endpoint.
    pub device: LoopbackDevice,
    /// Base address of the data region (after the rings).
    pub data_base: u64,
}

impl LoopbackPair {
    /// Build a queue of `size` descriptors in `mem_len` bytes of fresh
    /// shared memory.
    pub fn new(size: u16, mem_len: usize) -> Self {
        let shared = AtomicMemory::new(mem_len);
        let mut drv_mem = MemHandle::new(Arc::clone(&shared));
        let dev_mem = MemHandle::new(shared);
        let layout = VirtqueueLayout::contiguous(0, size);
        let data_base = (layout.total_bytes() + 0xFFF) & !0xFFF;
        assert!((data_base as usize) < mem_len, "memory too small for rings");
        let queue = DriverQueue::new(&mut drv_mem, layout, true);
        let dev_queue = DeviceQueue::new(layout, true, false);
        LoopbackPair {
            driver: LoopbackDriver {
                mem: drv_mem,
                queue,
            },
            device: LoopbackDevice {
                mem: dev_mem,
                queue: dev_queue,
            },
            data_base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn single_thread_round_trip() {
        let mut pair = LoopbackPair::new(8, 1 << 16);
        let buf = pair.data_base;
        pair.driver.mem.write(buf, b"ping");
        let head = pair.driver.send(&[BufferSpec::readable(buf, 4)]).unwrap();
        let chain = pair.device.try_take().unwrap();
        assert_eq!(chain.head, head);
        assert_eq!(pair.device.mem.read_vec(chain.bufs[0].addr, 4), b"ping");
        pair.device.complete(chain.head, 0);
        let used = pair.driver.try_recv().unwrap();
        assert_eq!(used.id, head as u32);
    }

    /// The headline concurrency test: a device thread echoes chains
    /// (readable request buffer + writable response buffer) while the
    /// driver thread pumps thousands of distinct payloads through and
    /// verifies every response. Any missing fence or ring bug shows up
    /// as corruption, loss, or a hang (caught by the pump bound).
    #[test]
    fn threaded_echo_stress() {
        const MSGS: u32 = 20_000;
        const QUEUE: u16 = 64;
        let pair = LoopbackPair::new(QUEUE, 1 << 21);
        let LoopbackPair {
            mut driver,
            mut device,
            data_base,
        } = pair;

        let device_thread = thread::spawn(move || {
            let mut served = 0u32;
            let mut spins = 0u64;
            while served < MSGS {
                match device.try_take() {
                    None => {
                        spins += 1;
                        assert!(spins < 100_000_000, "device starved");
                        thread::yield_now();
                    }
                    Some(chain) => {
                        // Echo: copy request into the response buffer.
                        let req = &chain.bufs[0];
                        let resp = &chain.bufs[1];
                        assert!(!req.writable && resp.writable);
                        let data = device.mem.read_vec(req.addr, req.len as usize);
                        device.mem.write(resp.addr, &data);
                        device.complete(chain.head, resp.len);
                        served += 1;
                    }
                }
            }
            served
        });

        // Driver side: keep up to QUEUE/2 requests in flight.
        let slots = (QUEUE / 2) as u64;
        let slot_size = 256u64;
        let mut next = 0u32;
        let mut done = 0u32;
        let mut inflight: std::collections::HashMap<u16, u32> = Default::default();
        let mut spins = 0u64;
        while done < MSGS {
            // Refill.
            while next < MSGS && (inflight.len() as u64) < slots {
                let slot = (next as u64 % slots) * slot_size * 2 + data_base;
                let payload = next.to_le_bytes();
                driver.mem.write(slot, &payload);
                let head = driver
                    .send(&[
                        BufferSpec::readable(slot, 4),
                        BufferSpec::writable(slot + slot_size, 4),
                    ])
                    .expect("ring has room by construction");
                inflight.insert(head, next);
                next += 1;
            }
            // Drain.
            match driver.try_recv() {
                None => {
                    spins += 1;
                    assert!(spins < 100_000_000, "driver starved");
                    thread::yield_now();
                }
                Some(used) => {
                    let msg = inflight.remove(&(used.id as u16)).expect("known head");
                    assert_eq!(used.len, 4);
                    let slot = (msg as u64 % slots) * slot_size * 2 + data_base;
                    let echoed = driver.mem.read_vec(slot + slot_size, 4);
                    assert_eq!(
                        u32::from_le_bytes(echoed.try_into().unwrap()),
                        msg,
                        "echo corrupted"
                    );
                    done += 1;
                }
            }
        }
        assert_eq!(device_thread.join().unwrap(), MSGS);
        assert!(inflight.is_empty());
    }

    #[test]
    fn bidirectional_queues_in_one_region() {
        // Two independent queues (like RX/TX) can share one memory
        // region without interference.
        let shared = AtomicMemory::new(1 << 18);
        let l1 = VirtqueueLayout::contiguous(0, 16);
        let l2 = VirtqueueLayout::contiguous((l1.total_bytes() + 15) & !15, 16);
        let mut m1 = MemHandle::new(Arc::clone(&shared));
        let mut m2 = MemHandle::new(shared);
        let mut d1 = DriverQueue::new(&mut m1, l1, false);
        let mut d2 = DriverQueue::new(&mut m2, l2, false);
        let mut dev1 = DeviceQueue::new(l1, false, false);
        let mut dev2 = DeviceQueue::new(l2, false, false);
        for i in 0..10u64 {
            d1.add_and_publish(&mut m1, &[BufferSpec::readable(0x2_0000 + i * 64, 64)])
                .unwrap();
            d2.add_and_publish(&mut m2, &[BufferSpec::writable(0x3_0000 + i * 64, 64)])
                .unwrap();
        }
        assert_eq!(dev1.pending(&m1), 10);
        assert_eq!(dev2.pending(&m2), 10);
        for _ in 0..10 {
            let c1 = dev1.pop_chain(&m1).unwrap().unwrap();
            assert!(!c1.bufs[0].writable);
            dev1.complete(&mut m1, c1.head, 0);
            let c2 = dev2.pop_chain(&m2).unwrap().unwrap();
            assert!(c2.bufs[0].writable);
            dev2.complete(&mut m2, c2.head, 64);
        }
        assert_eq!(d1.used_pending(&m1), 10);
        assert_eq!(d2.used_pending(&m2), 10);
    }
}
