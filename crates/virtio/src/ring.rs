//! Split-virtqueue memory layout (VirtIO 1.2 §2.7).
//!
//! A split virtqueue is three structures in guest memory:
//!
//! ```text
//! struct virtq_desc  { le64 addr; le32 len; le16 flags; le16 next; }   // ×N
//! struct virtq_avail { le16 flags; le16 idx; le16 ring[N]; le16 used_event; }
//! struct virtq_used  { le16 flags; le16 idx;
//!                      struct { le32 id; le32 len; } ring[N]; le16 avail_event; }
//! ```
//!
//! The driver owns the descriptor table and avail ring; the device owns
//! the used ring. `idx` fields are free-running 16-bit counters; the ring
//! slot is `idx % N`. Careful layout — driver-written and device-written
//! structures in separate cache lines — is one of VirtIO's stated design
//! points (§II-A of the paper), and [`VirtqueueLayout::contiguous`]
//! preserves it by aligning each structure.

use crate::mem::GuestMemory;

/// Descriptor flag: buffer continues via the `next` field.
pub const DESC_F_NEXT: u16 = 1;
/// Descriptor flag: buffer is device-writable (response buffer).
pub const DESC_F_WRITE: u16 = 2;
/// Descriptor flag: buffer contains an indirect descriptor table.
pub const DESC_F_INDIRECT: u16 = 4;

/// Avail-ring flag: driver requests no interrupts (polling driver).
pub const AVAIL_F_NO_INTERRUPT: u16 = 1;
/// Used-ring flag: device requests no notifications (busy device).
pub const USED_F_NO_NOTIFY: u16 = 1;

/// One descriptor-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Desc {
    /// Guest-physical buffer address.
    pub addr: u64,
    /// Buffer length in bytes.
    pub len: u32,
    /// `DESC_F_*` flags.
    pub flags: u16,
    /// Next descriptor index when `DESC_F_NEXT` is set.
    pub next: u16,
}

impl Desc {
    /// Size of a descriptor in memory.
    pub const SIZE: u64 = 16;

    /// True if this descriptor chains to another.
    pub fn has_next(&self) -> bool {
        self.flags & DESC_F_NEXT != 0
    }

    /// True if the device may write this buffer.
    pub fn is_write(&self) -> bool {
        self.flags & DESC_F_WRITE != 0
    }

    /// Read descriptor `idx` from the table at `table`.
    pub fn read_at<M: GuestMemory>(mem: &M, table: u64, idx: u16) -> Desc {
        let base = table + idx as u64 * Desc::SIZE;
        Desc {
            addr: mem.read_u64(base),
            len: mem.read_u32(base + 8),
            flags: mem.read_u16(base + 12),
            next: mem.read_u16(base + 14),
        }
    }

    /// Write this descriptor as entry `idx` of the table at `table`.
    pub fn write_at<M: GuestMemory>(&self, mem: &mut M, table: u64, idx: u16) {
        let base = table + idx as u64 * Desc::SIZE;
        mem.write_u64(base, self.addr);
        mem.write_u32(base + 8, self.len);
        mem.write_u16(base + 12, self.flags);
        mem.write_u16(base + 14, self.next);
    }
}

/// An entry of the used ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UsedElem {
    /// Head descriptor index of the completed chain.
    pub id: u32,
    /// Bytes the device wrote into the chain's writable buffers.
    pub len: u32,
}

/// Addresses of a virtqueue's three structures plus its size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VirtqueueLayout {
    /// Descriptor table base (16-byte aligned).
    pub desc: u64,
    /// Avail ring base (2-byte aligned).
    pub avail: u64,
    /// Used ring base (4-byte aligned).
    pub used: u64,
    /// Queue size N (a power of two, ≤ 32768).
    pub size: u16,
}

impl VirtqueueLayout {
    /// Validate a queue size per spec (power of two, 1..=32768).
    pub fn valid_size(n: u16) -> bool {
        n.is_power_of_two() && (1..=32768).contains(&n)
    }

    /// Lay the three structures out contiguously from `base` (which must
    /// be 16-byte aligned), inserting alignment padding. Returns the
    /// layout; [`Self::total_bytes`] tells the caller how much memory the
    /// queue occupies.
    pub fn contiguous(base: u64, size: u16) -> VirtqueueLayout {
        assert!(Self::valid_size(size), "invalid queue size {size}");
        assert_eq!(base % 16, 0, "descriptor table must be 16-byte aligned");
        let desc = base;
        let desc_bytes = size as u64 * Desc::SIZE;
        let avail = desc + desc_bytes; // desc end is 16-aligned ⇒ 2-aligned
        let avail_bytes = Self::avail_bytes(size);
        // Align the used ring up to 4.
        let used = (avail + avail_bytes + 3) & !3;
        VirtqueueLayout {
            desc,
            avail,
            used,
            size,
        }
    }

    /// Bytes occupied by the avail ring (flags, idx, ring, used_event).
    pub fn avail_bytes(size: u16) -> u64 {
        2 + 2 + 2 * size as u64 + 2
    }

    /// Bytes occupied by the used ring (flags, idx, ring, avail_event).
    pub fn used_bytes(size: u16) -> u64 {
        2 + 2 + 8 * size as u64 + 2
    }

    /// Total bytes from `desc` to the end of the used ring.
    pub fn total_bytes(&self) -> u64 {
        self.used + Self::used_bytes(self.size) - self.desc
    }

    // ---- avail ring field addresses (driver-written) ----

    /// Address of `avail.flags`.
    pub fn avail_flags_addr(&self) -> u64 {
        self.avail
    }

    /// Address of `avail.idx`.
    pub fn avail_idx_addr(&self) -> u64 {
        self.avail + 2
    }

    /// Address of `avail.ring[slot]`.
    pub fn avail_ring_addr(&self, slot: u16) -> u64 {
        debug_assert!(slot < self.size);
        self.avail + 4 + 2 * slot as u64
    }

    /// Address of `avail.used_event` (EVENT_IDX: driver tells the device
    /// when to interrupt).
    pub fn used_event_addr(&self) -> u64 {
        self.avail + 4 + 2 * self.size as u64
    }

    // ---- used ring field addresses (device-written) ----

    /// Address of `used.flags`.
    pub fn used_flags_addr(&self) -> u64 {
        self.used
    }

    /// Address of `used.idx`.
    pub fn used_idx_addr(&self) -> u64 {
        self.used + 2
    }

    /// Address of `used.ring[slot]`.
    pub fn used_ring_addr(&self, slot: u16) -> u64 {
        debug_assert!(slot < self.size);
        self.used + 4 + 8 * slot as u64
    }

    /// Address of `used.avail_event` (EVENT_IDX: device tells the driver
    /// when to notify).
    pub fn avail_event_addr(&self) -> u64 {
        self.used + 4 + 8 * self.size as u64
    }

    /// Address of descriptor `idx`.
    pub fn desc_addr(&self, idx: u16) -> u64 {
        debug_assert!(idx < self.size);
        self.desc + idx as u64 * Desc::SIZE
    }
}

/// The EVENT_IDX predicate (VirtIO 1.2 §2.7.9, `vring_need_event`): given
/// the event index the other side published, should a notification fire
/// after moving `idx` from `old` to `new`? All arithmetic wraps mod 2¹⁶.
pub fn vring_need_event(event_idx: u16, new_idx: u16, old_idx: u16) -> bool {
    new_idx.wrapping_sub(event_idx).wrapping_sub(1) < new_idx.wrapping_sub(old_idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::VecMemory;

    #[test]
    fn layout_matches_spec_arithmetic() {
        let l = VirtqueueLayout::contiguous(0x1000, 256);
        assert_eq!(l.desc, 0x1000);
        assert_eq!(l.avail, 0x1000 + 256 * 16);
        // avail: 2+2+512+2 = 518 bytes → used aligned up to 4.
        assert_eq!(l.used, (l.avail + 518 + 3) & !3);
        assert_eq!(l.used % 4, 0);
        assert_eq!(
            l.total_bytes(),
            (l.used - l.desc) + VirtqueueLayout::used_bytes(256)
        );
    }

    #[test]
    fn field_addresses() {
        let l = VirtqueueLayout::contiguous(0, 8);
        assert_eq!(l.avail_flags_addr(), 128);
        assert_eq!(l.avail_idx_addr(), 130);
        assert_eq!(l.avail_ring_addr(0), 132);
        assert_eq!(l.avail_ring_addr(7), 146);
        assert_eq!(l.used_event_addr(), 148);
        assert_eq!(l.used_flags_addr(), 152);
        assert_eq!(l.used_idx_addr(), 154);
        assert_eq!(l.used_ring_addr(1), 164);
        assert_eq!(l.avail_event_addr(), 156 + 64);
        assert_eq!(l.desc_addr(3), 48);
    }

    #[test]
    fn size_validation() {
        assert!(VirtqueueLayout::valid_size(1));
        assert!(VirtqueueLayout::valid_size(256));
        assert!(VirtqueueLayout::valid_size(32768));
        assert!(!VirtqueueLayout::valid_size(0));
        assert!(!VirtqueueLayout::valid_size(3));
        assert!(!VirtqueueLayout::valid_size(300));
    }

    #[test]
    #[should_panic(expected = "invalid queue size")]
    fn bad_size_panics() {
        let _ = VirtqueueLayout::contiguous(0, 5);
    }

    #[test]
    fn desc_round_trip() {
        let mut m = VecMemory::new(4096);
        let d = Desc {
            addr: 0xDEAD_BEEF_0000,
            len: 1500,
            flags: DESC_F_NEXT | DESC_F_WRITE,
            next: 7,
        };
        d.write_at(&mut m, 0x100, 3);
        let back = Desc::read_at(&m, 0x100, 3);
        assert_eq!(back, d);
        assert!(back.has_next() && back.is_write());
    }

    #[test]
    fn desc_wire_format_is_little_endian() {
        let mut m = VecMemory::new(64);
        Desc {
            addr: 0x0102_0304_0506_0708,
            len: 0x0A0B_0C0D,
            flags: 1,
            next: 2,
        }
        .write_at(&mut m, 0, 0);
        assert_eq!(
            &m.raw()[0..16],
            &[8, 7, 6, 5, 4, 3, 2, 1, 0x0D, 0x0C, 0x0B, 0x0A, 1, 0, 2, 0]
        );
    }

    #[test]
    fn need_event_basic() {
        // Device published avail_event = 5: notify when idx crosses 5→6.
        assert!(vring_need_event(5, 6, 5));
        assert!(!vring_need_event(5, 5, 4));
        // Batched crossing: old 3 → new 8 crosses event 5.
        assert!(vring_need_event(5, 8, 3));
        // Already past: old 7 → new 8, event 5 not crossed again.
        assert!(!vring_need_event(5, 8, 7));
    }

    #[test]
    fn need_event_wraps() {
        // Crossing the 16-bit wrap point.
        assert!(vring_need_event(0xFFFF, 0x0000, 0xFFFE)); // event 0xFFFF crossed as new wraps to 0
        assert!(vring_need_event(0x0001, 0x0005, 0xFFF0));
        assert!(!vring_need_event(0x0008, 0x0005, 0xFFF0));
    }
}
