//! VirtIO modern-PCI transport: the device-side register blocks.
//!
//! These are the "VirtIO configuration structures" requirement (ii) of the
//! paper's §II-C — implemented as part of the FPGA's control logic and
//! mapped into BAR0. The in-kernel virtio-pci driver locates them through
//! the vendor capabilities (`vf_pcie::caps`) and then performs plain MMIO
//! reads/writes against this register file:
//!
//! * the **common configuration** structure (VirtIO 1.2 §4.1.4.3):
//!   feature windows, device status, queue setup registers;
//! * the **notification** region: one 16-bit doorbell per queue at
//!   `notify_off · notify_off_multiplier`;
//! * the **ISR status** byte (read-to-clear; unused under MSI-X but
//!   required to exist);
//! * the **device-specific configuration** (e.g. `virtio_net_config`),
//!   provided by the device-type modules as raw bytes.

use crate::features::{Negotiation, NegotiationError};
use crate::ring::VirtqueueLayout;

/// Register offsets within the common configuration structure.
pub mod common {
    /// `device_feature_select` (u32, RW).
    pub const DEVICE_FEATURE_SELECT: u64 = 0x00;
    /// `device_feature` (u32, RO).
    pub const DEVICE_FEATURE: u64 = 0x04;
    /// `driver_feature_select` (u32, RW).
    pub const DRIVER_FEATURE_SELECT: u64 = 0x08;
    /// `driver_feature` (u32, RW).
    pub const DRIVER_FEATURE: u64 = 0x0C;
    /// `config_msix_vector` (u16, RW).
    pub const CONFIG_MSIX_VECTOR: u64 = 0x10;
    /// `num_queues` (u16, RO).
    pub const NUM_QUEUES: u64 = 0x12;
    /// `device_status` (u8, RW).
    pub const DEVICE_STATUS: u64 = 0x14;
    /// `config_generation` (u8, RO).
    pub const CONFIG_GENERATION: u64 = 0x15;
    /// `queue_select` (u16, RW).
    pub const QUEUE_SELECT: u64 = 0x16;
    /// `queue_size` (u16, RW).
    pub const QUEUE_SIZE: u64 = 0x18;
    /// `queue_msix_vector` (u16, RW).
    pub const QUEUE_MSIX_VECTOR: u64 = 0x1A;
    /// `queue_enable` (u16, RW).
    pub const QUEUE_ENABLE: u64 = 0x1C;
    /// `queue_notify_off` (u16, RO).
    pub const QUEUE_NOTIFY_OFF: u64 = 0x1E;
    /// `queue_desc` low half (u64 split across two u32 accesses).
    pub const QUEUE_DESC_LO: u64 = 0x20;
    /// `queue_desc` high half.
    pub const QUEUE_DESC_HI: u64 = 0x24;
    /// `queue_driver` (avail ring) low half.
    pub const QUEUE_DRIVER_LO: u64 = 0x28;
    /// `queue_driver` high half.
    pub const QUEUE_DRIVER_HI: u64 = 0x2C;
    /// `queue_device` (used ring) low half.
    pub const QUEUE_DEVICE_LO: u64 = 0x30;
    /// `queue_device` high half.
    pub const QUEUE_DEVICE_HI: u64 = 0x34;
    /// Structure length.
    pub const LEN: u64 = 0x38;
}

/// `VIRTIO_MSI_NO_VECTOR`.
pub const MSI_NO_VECTOR: u16 = 0xFFFF;

/// Per-queue registers behind `queue_select`.
#[derive(Clone, Debug)]
pub struct QueueRegs {
    /// Maximum size the device supports for this queue.
    pub size_max: u16,
    /// Size the driver programmed (defaults to `size_max`).
    pub size: u16,
    /// MSI-X vector for this queue.
    pub msix_vector: u16,
    /// Queue enabled?
    pub enabled: bool,
    /// Notify offset (we use the queue index).
    pub notify_off: u16,
    /// Descriptor table physical address.
    pub desc: u64,
    /// Avail ring ("driver area") physical address.
    pub driver: u64,
    /// Used ring ("device area") physical address.
    pub device: u64,
}

impl QueueRegs {
    fn new(index: u16, size_max: u16) -> Self {
        QueueRegs {
            size_max,
            size: size_max,
            msix_vector: MSI_NO_VECTOR,
            enabled: false,
            notify_off: index,
            desc: 0,
            driver: 0,
            device: 0,
        }
    }

    /// The ring layout the driver programmed (valid once enabled).
    pub fn layout(&self) -> VirtqueueLayout {
        VirtqueueLayout {
            desc: self.desc,
            avail: self.driver,
            used: self.device,
            size: self.size,
        }
    }
}

/// Side effects of a common-cfg write that the device model must act on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CfgEvent {
    /// Device status changed (argument: new raw value written).
    StatusWrite(u8),
    /// Queue `n` was enabled with fully-programmed addresses.
    QueueEnabled(u16),
    /// Device was reset (status written 0).
    Reset,
}

/// The device-side common configuration register file.
#[derive(Clone, Debug)]
pub struct CommonCfg {
    /// Feature/status negotiation state.
    pub negotiation: Negotiation,
    device_feature_select: u32,
    driver_feature_select: u32,
    driver_features_shadow: u64,
    /// MSI-X vector for config-change interrupts.
    pub config_msix_vector: u16,
    queue_select: u16,
    queues: Vec<QueueRegs>,
    /// Bumped whenever device-specific config changes.
    pub config_generation: u8,
}

impl CommonCfg {
    /// A device offering `features` with the given per-queue max sizes.
    pub fn new(features: u64, queue_sizes: &[u16]) -> Self {
        CommonCfg {
            negotiation: Negotiation::new(features),
            device_feature_select: 0,
            driver_feature_select: 0,
            driver_features_shadow: 0,
            config_msix_vector: MSI_NO_VECTOR,
            queue_select: 0,
            queues: queue_sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| QueueRegs::new(i as u16, s))
                .collect(),
            config_generation: 0,
        }
    }

    /// Number of queues.
    pub fn num_queues(&self) -> u16 {
        self.queues.len() as u16
    }

    /// Registers of queue `n`.
    pub fn queue(&self, n: u16) -> &QueueRegs {
        &self.queues[n as usize]
    }

    /// Mutable registers of queue `n` (device-internal use).
    pub fn queue_mut(&mut self, n: u16) -> &mut QueueRegs {
        &mut self.queues[n as usize]
    }

    fn selected(&mut self) -> Option<&mut QueueRegs> {
        self.queues.get_mut(self.queue_select as usize)
    }

    /// MMIO read of `len` ∈ {1, 2, 4} bytes at `off`.
    pub fn read(&self, off: u64, len: usize) -> u64 {
        let q = self.queues.get(self.queue_select as usize);
        let val: u64 = match off {
            common::DEVICE_FEATURE_SELECT => self.device_feature_select as u64,
            common::DEVICE_FEATURE => {
                let f = self.negotiation.offered();
                match self.device_feature_select {
                    0 => f & 0xFFFF_FFFF,
                    1 => f >> 32,
                    _ => 0,
                }
            }
            common::DRIVER_FEATURE_SELECT => self.driver_feature_select as u64,
            common::DRIVER_FEATURE => match self.driver_feature_select {
                0 => self.driver_features_shadow & 0xFFFF_FFFF,
                1 => self.driver_features_shadow >> 32,
                _ => 0,
            },
            common::CONFIG_MSIX_VECTOR => self.config_msix_vector as u64,
            common::NUM_QUEUES => self.num_queues() as u64,
            common::DEVICE_STATUS => self.negotiation.status() as u64,
            common::CONFIG_GENERATION => self.config_generation as u64,
            common::QUEUE_SELECT => self.queue_select as u64,
            common::QUEUE_SIZE => q.map_or(0, |q| q.size) as u64,
            common::QUEUE_MSIX_VECTOR => q.map_or(MSI_NO_VECTOR, |q| q.msix_vector) as u64,
            common::QUEUE_ENABLE => q.map_or(0, |q| q.enabled as u16) as u64,
            common::QUEUE_NOTIFY_OFF => q.map_or(0, |q| q.notify_off) as u64,
            common::QUEUE_DESC_LO => q.map_or(0, |q| q.desc) & 0xFFFF_FFFF,
            common::QUEUE_DESC_HI => q.map_or(0, |q| q.desc) >> 32,
            common::QUEUE_DRIVER_LO => q.map_or(0, |q| q.driver) & 0xFFFF_FFFF,
            common::QUEUE_DRIVER_HI => q.map_or(0, |q| q.driver) >> 32,
            common::QUEUE_DEVICE_LO => q.map_or(0, |q| q.device) & 0xFFFF_FFFF,
            common::QUEUE_DEVICE_HI => q.map_or(0, |q| q.device) >> 32,
            _ => 0,
        };
        val & mask(len)
    }

    /// MMIO write of `len` ∈ {1, 2, 4} bytes at `off`. Returns any side
    /// effect the device model must handle, or a negotiation error (which
    /// the driver observes via status read-back).
    pub fn write(
        &mut self,
        off: u64,
        len: usize,
        val: u64,
    ) -> Result<Option<CfgEvent>, NegotiationError> {
        let val = val & mask(len);
        match off {
            common::DEVICE_FEATURE_SELECT => self.device_feature_select = val as u32,
            common::DRIVER_FEATURE_SELECT => self.driver_feature_select = val as u32,
            common::DRIVER_FEATURE => {
                match self.driver_feature_select {
                    0 => {
                        self.driver_features_shadow =
                            (self.driver_features_shadow & !0xFFFF_FFFF) | val;
                    }
                    1 => {
                        self.driver_features_shadow =
                            (self.driver_features_shadow & 0xFFFF_FFFF) | (val << 32);
                    }
                    _ => {}
                }
                self.negotiation
                    .write_driver_features(self.driver_features_shadow);
            }
            common::CONFIG_MSIX_VECTOR => self.config_msix_vector = val as u16,
            common::DEVICE_STATUS => {
                let v = val as u8;
                if v == 0 {
                    self.reset();
                    return Ok(Some(CfgEvent::Reset));
                }
                self.negotiation.write_status(v)?;
                return Ok(Some(CfgEvent::StatusWrite(v)));
            }
            common::QUEUE_SELECT => self.queue_select = val as u16,
            common::QUEUE_SIZE => {
                if let Some(q) = self.selected() {
                    let v = val as u16;
                    if VirtqueueLayout::valid_size(v) && v <= q.size_max {
                        q.size = v;
                    }
                }
            }
            common::QUEUE_MSIX_VECTOR => {
                if let Some(q) = self.selected() {
                    q.msix_vector = val as u16;
                }
            }
            common::QUEUE_ENABLE => {
                let sel = self.queue_select;
                if let Some(q) = self.selected() {
                    if val == 1 && !q.enabled {
                        q.enabled = true;
                        return Ok(Some(CfgEvent::QueueEnabled(sel)));
                    }
                }
            }
            common::QUEUE_DESC_LO => {
                if let Some(q) = self.selected() {
                    q.desc = (q.desc & !0xFFFF_FFFF) | val;
                }
            }
            common::QUEUE_DESC_HI => {
                if let Some(q) = self.selected() {
                    q.desc = (q.desc & 0xFFFF_FFFF) | (val << 32);
                }
            }
            common::QUEUE_DRIVER_LO => {
                if let Some(q) = self.selected() {
                    q.driver = (q.driver & !0xFFFF_FFFF) | val;
                }
            }
            common::QUEUE_DRIVER_HI => {
                if let Some(q) = self.selected() {
                    q.driver = (q.driver & 0xFFFF_FFFF) | (val << 32);
                }
            }
            common::QUEUE_DEVICE_LO => {
                if let Some(q) = self.selected() {
                    q.device = (q.device & !0xFFFF_FFFF) | val;
                }
            }
            common::QUEUE_DEVICE_HI => {
                if let Some(q) = self.selected() {
                    q.device = (q.device & 0xFFFF_FFFF) | (val << 32);
                }
            }
            _ => {}
        }
        Ok(None)
    }

    fn reset(&mut self) {
        let offered = self.negotiation.offered();
        let sizes: Vec<u16> = self.queues.iter().map(|q| q.size_max).collect();
        *self = CommonCfg::new(offered, &sizes);
    }
}

fn mask(len: usize) -> u64 {
    match len {
        1 => 0xFF,
        2 => 0xFFFF,
        4 => 0xFFFF_FFFF,
        8 => u64::MAX,
        _ => panic!("unsupported access width {len}"),
    }
}

/// The ISR status byte (read-to-clear). Unused when MSI-X is enabled, but
/// the structure must exist for the transport to be spec-complete.
#[derive(Clone, Copy, Debug, Default)]
pub struct IsrStatus {
    bits: u8,
}

impl IsrStatus {
    /// Queue interrupt bit.
    pub const QUEUE: u8 = 1;
    /// Device configuration change bit.
    pub const CONFIG: u8 = 2;

    /// Device sets bits when it would assert INTx.
    pub fn set(&mut self, bits: u8) {
        self.bits |= bits;
    }

    /// Driver read: returns and clears (the spec's read-to-clear
    /// semantics).
    pub fn read_to_clear(&mut self) -> u8 {
        std::mem::take(&mut self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{feature, status};

    fn cfg() -> CommonCfg {
        CommonCfg::new(
            feature::VERSION_1 | feature::RING_EVENT_IDX | 0x7,
            &[256, 256, 64],
        )
    }

    #[test]
    fn feature_windows() {
        let mut c = cfg();
        c.write(common::DEVICE_FEATURE_SELECT, 4, 0).unwrap();
        let lo = c.read(common::DEVICE_FEATURE, 4);
        c.write(common::DEVICE_FEATURE_SELECT, 4, 1).unwrap();
        let hi = c.read(common::DEVICE_FEATURE, 4);
        assert_eq!(lo | (hi << 32), c.negotiation.offered());
        // Select window 2: reads as zero.
        c.write(common::DEVICE_FEATURE_SELECT, 4, 2).unwrap();
        assert_eq!(c.read(common::DEVICE_FEATURE, 4), 0);
    }

    #[test]
    fn driver_feature_write_via_windows() {
        let mut c = cfg();
        let accept = feature::VERSION_1 | 0x3;
        c.write(common::DRIVER_FEATURE_SELECT, 4, 0).unwrap();
        c.write(common::DRIVER_FEATURE, 4, accept & 0xFFFF_FFFF)
            .unwrap();
        c.write(common::DRIVER_FEATURE_SELECT, 4, 1).unwrap();
        c.write(common::DRIVER_FEATURE, 4, accept >> 32).unwrap();
        c.write(common::DEVICE_STATUS, 1, status::ACKNOWLEDGE as u64)
            .unwrap();
        c.write(
            common::DEVICE_STATUS,
            1,
            (status::ACKNOWLEDGE | status::DRIVER) as u64,
        )
        .unwrap();
        c.write(
            common::DEVICE_STATUS,
            1,
            (status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK) as u64,
        )
        .unwrap();
        assert_eq!(c.negotiation.negotiated(), accept);
        assert!(c.read(common::DEVICE_STATUS, 1) as u8 & status::FEATURES_OK != 0);
    }

    #[test]
    fn queue_programming_sequence() {
        let mut c = cfg();
        assert_eq!(c.read(common::NUM_QUEUES, 2), 3);
        c.write(common::QUEUE_SELECT, 2, 1).unwrap();
        assert_eq!(c.read(common::QUEUE_SIZE, 2), 256);
        assert_eq!(c.read(common::QUEUE_NOTIFY_OFF, 2), 1);
        c.write(common::QUEUE_SIZE, 2, 128).unwrap();
        c.write(common::QUEUE_MSIX_VECTOR, 2, 1).unwrap();
        c.write(common::QUEUE_DESC_LO, 4, 0x0010_0000).unwrap();
        c.write(common::QUEUE_DESC_HI, 4, 0x1).unwrap();
        c.write(common::QUEUE_DRIVER_LO, 4, 0x0020_0000).unwrap();
        c.write(common::QUEUE_DEVICE_LO, 4, 0x0030_0000).unwrap();
        let ev = c.write(common::QUEUE_ENABLE, 2, 1).unwrap();
        assert_eq!(ev, Some(CfgEvent::QueueEnabled(1)));
        let q = c.queue(1);
        assert!(q.enabled);
        assert_eq!(q.size, 128);
        assert_eq!(q.desc, 0x1_0010_0000);
        let layout = q.layout();
        assert_eq!(layout.avail, 0x0020_0000);
        assert_eq!(layout.used, 0x0030_0000);
        assert_eq!(layout.size, 128);
    }

    #[test]
    fn queue_size_rejects_invalid() {
        let mut c = cfg();
        c.write(common::QUEUE_SELECT, 2, 0).unwrap();
        c.write(common::QUEUE_SIZE, 2, 300).unwrap(); // not a power of 2
        assert_eq!(c.read(common::QUEUE_SIZE, 2), 256);
        c.write(common::QUEUE_SIZE, 2, 512).unwrap(); // > size_max
        assert_eq!(c.read(common::QUEUE_SIZE, 2), 256);
    }

    #[test]
    fn select_out_of_range_queue_reads_zero_size() {
        let mut c = cfg();
        c.write(common::QUEUE_SELECT, 2, 40).unwrap();
        assert_eq!(c.read(common::QUEUE_SIZE, 2), 0);
        assert_eq!(c.read(common::QUEUE_ENABLE, 2), 0);
    }

    #[test]
    fn status_zero_resets() {
        let mut c = cfg();
        c.write(common::QUEUE_SELECT, 2, 0).unwrap();
        c.write(common::QUEUE_DESC_LO, 4, 0xAAAA_0000).unwrap();
        c.write(common::QUEUE_ENABLE, 2, 1).unwrap();
        let ev = c.write(common::DEVICE_STATUS, 1, 0).unwrap();
        assert_eq!(ev, Some(CfgEvent::Reset));
        assert!(!c.queue(0).enabled);
        assert_eq!(c.queue(0).desc, 0);
        assert_eq!(c.read(common::DEVICE_STATUS, 1), 0);
    }

    #[test]
    fn double_enable_fires_once() {
        let mut c = cfg();
        c.write(common::QUEUE_SELECT, 2, 0).unwrap();
        assert!(c.write(common::QUEUE_ENABLE, 2, 1).unwrap().is_some());
        assert!(c.write(common::QUEUE_ENABLE, 2, 1).unwrap().is_none());
    }

    #[test]
    fn isr_read_to_clear() {
        let mut isr = IsrStatus::default();
        isr.set(IsrStatus::QUEUE);
        isr.set(IsrStatus::CONFIG);
        assert_eq!(isr.read_to_clear(), 3);
        assert_eq!(isr.read_to_clear(), 0);
    }
}
