//! Driver-side virtqueue operation.
//!
//! This is the front-end half of the protocol: what the in-kernel
//! virtio-net/virtio-console drivers do with a queue. It embodies the
//! design philosophy the paper contrasts with vendor drivers (§IV-A): the
//! addresses of *all* ring structures are shared with the device once, at
//! initialization; at runtime, exposing a buffer is a couple of memory
//! writes plus — at most — a single doorbell.
//!
//! The implementation manages the free-descriptor list, builds chains,
//! publishes avail entries, decides whether a notification (doorbell) is
//! required (`VIRTIO_F_EVENT_IDX` aware), and consumes used entries.

use crate::mem::GuestMemory;
use crate::ring::{
    vring_need_event, Desc, UsedElem, VirtqueueLayout, AVAIL_F_NO_INTERRUPT, DESC_F_NEXT,
    DESC_F_WRITE, USED_F_NO_NOTIFY,
};

/// One buffer of a chain being added.
#[derive(Clone, Copy, Debug)]
pub struct BufferSpec {
    /// Guest-physical address.
    pub addr: u64,
    /// Length in bytes.
    pub len: u32,
    /// Device-writable (a response buffer)?
    pub writable: bool,
}

impl BufferSpec {
    /// Device-readable buffer.
    pub fn readable(addr: u64, len: u32) -> Self {
        BufferSpec {
            addr,
            len,
            writable: false,
        }
    }

    /// Device-writable buffer.
    pub fn writable(addr: u64, len: u32) -> Self {
        BufferSpec {
            addr,
            len,
            writable: true,
        }
    }
}

/// Errors from driver-side queue operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueError {
    /// Not enough free descriptors for the requested chain.
    NoSpace {
        /// Descriptors requested.
        needed: u16,
        /// Descriptors free.
        free: u16,
    },
    /// An empty chain was requested.
    EmptyChain,
    /// Writable buffers must follow readable ones within a chain.
    WritableBeforeReadable,
}

/// Driver-side state of one virtqueue.
#[derive(Clone, Debug)]
pub struct DriverQueue {
    layout: VirtqueueLayout,
    /// Head of the free-descriptor list (chained through `next`).
    free_head: u16,
    num_free: u16,
    /// Shadow of our published avail index.
    avail_idx: u16,
    /// Last used index we consumed.
    last_used: u16,
    /// Whether `VIRTIO_F_EVENT_IDX` was negotiated.
    event_idx: bool,
    /// Per-head chain length, for freeing without rewalking flags.
    chain_len: Vec<u16>,
    /// Doorbells actually issued (for the event-count comparisons in the
    /// evaluation).
    pub notifications_sent: u64,
}

impl DriverQueue {
    /// Initialize driver state over a queue at `layout`, building the free
    /// list and zeroing the driver-owned structures (the kernel allocates
    /// rings zeroed).
    pub fn new<M: GuestMemory>(mem: &mut M, layout: VirtqueueLayout, event_idx: bool) -> Self {
        let n = layout.size;
        // Chain every descriptor into the free list: i → i+1.
        for i in 0..n {
            Desc {
                addr: 0,
                len: 0,
                flags: if i + 1 < n { DESC_F_NEXT } else { 0 },
                next: if i + 1 < n { i + 1 } else { 0 },
            }
            .write_at(mem, layout.desc, i);
        }
        mem.write_u16(layout.avail_flags_addr(), 0);
        mem.write_u16(layout.avail_idx_addr(), 0);
        mem.write_u16(layout.used_event_addr(), 0);
        DriverQueue {
            layout,
            free_head: 0,
            num_free: n,
            avail_idx: 0,
            last_used: 0,
            event_idx,
            chain_len: vec![0; n as usize],
            notifications_sent: 0,
        }
    }

    /// The queue's layout.
    pub fn layout(&self) -> &VirtqueueLayout {
        &self.layout
    }

    /// Free descriptors remaining.
    pub fn num_free(&self) -> u16 {
        self.num_free
    }

    /// Our published avail index.
    pub fn avail_idx(&self) -> u16 {
        self.avail_idx
    }

    /// Build a descriptor chain from `bufs` and return its head without
    /// publishing it. Spec rule: all readable buffers precede all
    /// writable ones.
    pub fn add_chain<M: GuestMemory>(
        &mut self,
        mem: &mut M,
        bufs: &[BufferSpec],
    ) -> Result<u16, QueueError> {
        if bufs.is_empty() {
            return Err(QueueError::EmptyChain);
        }
        let needed = bufs.len() as u16;
        if needed > self.num_free {
            return Err(QueueError::NoSpace {
                needed,
                free: self.num_free,
            });
        }
        if let Some(first_w) = bufs.iter().position(|b| b.writable) {
            if bufs[first_w..].iter().any(|b| !b.writable) {
                return Err(QueueError::WritableBeforeReadable);
            }
        }

        let head = self.free_head;
        let mut idx = head;
        for (i, buf) in bufs.iter().enumerate() {
            let cur = Desc::read_at(mem, self.layout.desc, idx);
            let next_free = cur.next;
            let last = i + 1 == bufs.len();
            Desc {
                addr: buf.addr,
                len: buf.len,
                flags: (if buf.writable { DESC_F_WRITE } else { 0 })
                    | (if last { 0 } else { DESC_F_NEXT }),
                next: if last { 0 } else { next_free },
            }
            .write_at(mem, self.layout.desc, idx);
            if !last {
                idx = next_free;
            } else {
                self.free_head = next_free;
            }
        }
        self.num_free -= needed;
        self.chain_len[head as usize] = needed;
        Ok(head)
    }

    /// Publish a built chain in the avail ring. Returns the new avail
    /// index (already written to memory). The write ordering — ring entry
    /// first, then the index — mirrors the store-release the real driver
    /// issues.
    pub fn publish<M: GuestMemory>(&mut self, mem: &mut M, head: u16) -> u16 {
        let slot = self.avail_idx % self.layout.size;
        mem.write_u16(self.layout.avail_ring_addr(slot), head);
        self.avail_idx = self.avail_idx.wrapping_add(1);
        mem.write_u16(self.layout.avail_idx_addr(), self.avail_idx);
        self.avail_idx
    }

    /// Publish several built chains with a single avail-index store.
    ///
    /// A poll-mode driver that builds a burst of chains pays the
    /// store-release cost once for the whole burst: every ring entry is
    /// written first, then the index advances past all of them in one
    /// write. Returns the new avail index (already written to memory).
    /// An empty batch is a no-op and returns the current index.
    ///
    /// A batch longer than the ring would lap itself — slot
    /// `avail_idx + i (mod size)` revisits entries the same call just
    /// wrote, handing the device a corrupt ring — so it is rejected
    /// before touching memory.
    pub fn publish_batch<M: GuestMemory>(
        &mut self,
        mem: &mut M,
        heads: &[u16],
    ) -> Result<u16, QueueError> {
        if heads.is_empty() {
            return Ok(self.avail_idx);
        }
        if heads.len() > self.layout.size as usize {
            return Err(QueueError::NoSpace {
                needed: heads.len().try_into().unwrap_or(u16::MAX),
                free: self.layout.size,
            });
        }
        for (i, &head) in heads.iter().enumerate() {
            let slot = self.avail_idx.wrapping_add(i as u16) % self.layout.size;
            mem.write_u16(self.layout.avail_ring_addr(slot), head);
        }
        self.avail_idx = self.avail_idx.wrapping_add(heads.len() as u16);
        mem.write_u16(self.layout.avail_idx_addr(), self.avail_idx);
        Ok(self.avail_idx)
    }

    /// Convenience: add + publish in one call.
    pub fn add_and_publish<M: GuestMemory>(
        &mut self,
        mem: &mut M,
        bufs: &[BufferSpec],
    ) -> Result<u16, QueueError> {
        let head = self.add_chain(mem, bufs)?;
        self.publish(mem, head);
        Ok(head)
    }

    /// After publishing, must the driver ring the doorbell? `old_idx` is
    /// the avail index before the batch being decided on.
    ///
    /// Without EVENT_IDX the device's `USED_F_NO_NOTIFY` flag gates
    /// notifications; with EVENT_IDX the device's `avail_event` field does
    /// (VirtIO 1.2 §2.7.10).
    pub fn needs_notify<M: GuestMemory>(&mut self, mem: &M, old_idx: u16) -> bool {
        let need = if self.event_idx {
            let avail_event = mem.read_u16(self.layout.avail_event_addr());
            vring_need_event(avail_event, self.avail_idx, old_idx)
        } else {
            mem.read_u16(self.layout.used_flags_addr()) & USED_F_NO_NOTIFY == 0
        };
        if need {
            self.notifications_sent += 1;
        }
        need
    }

    /// Consume one used entry, returning it and freeing its chain.
    pub fn pop_used<M: GuestMemory>(&mut self, mem: &mut M) -> Option<UsedElem> {
        let used_idx = mem.read_u16(self.layout.used_idx_addr());
        if used_idx == self.last_used {
            return None;
        }
        let slot = self.last_used % self.layout.size;
        let entry_addr = self.layout.used_ring_addr(slot);
        let elem = UsedElem {
            id: mem.read_u32(entry_addr),
            len: mem.read_u32(entry_addr + 4),
        };
        self.last_used = self.last_used.wrapping_add(1);
        self.free_chain(mem, elem.id as u16);
        if self.event_idx {
            // Tell the device where we are: interrupt again once it moves
            // past our consumption point.
            mem.write_u16(self.layout.used_event_addr(), self.last_used);
        }
        Some(elem)
    }

    /// Consume up to `max` used entries in one pass, freeing their
    /// chains.
    ///
    /// The used index is read once for the whole batch and — when
    /// `VIRTIO_F_EVENT_IDX` is negotiated — `used_event` is written once,
    /// after the last entry, instead of per entry. This is the consume
    /// half of a poll-mode burst: one cache-missing index read amortized
    /// over every completion it reveals.
    pub fn pop_used_batch<M: GuestMemory>(&mut self, mem: &mut M, max: usize) -> Vec<UsedElem> {
        let used_idx = mem.read_u16(self.layout.used_idx_addr());
        let pending = used_idx.wrapping_sub(self.last_used) as usize;
        let take = pending.min(max);
        let mut out = Vec::with_capacity(take);
        for _ in 0..take {
            let slot = self.last_used % self.layout.size;
            let entry_addr = self.layout.used_ring_addr(slot);
            let elem = UsedElem {
                id: mem.read_u32(entry_addr),
                len: mem.read_u32(entry_addr + 4),
            };
            self.last_used = self.last_used.wrapping_add(1);
            self.free_chain(mem, elem.id as u16);
            out.push(elem);
        }
        if self.event_idx && !out.is_empty() {
            mem.write_u16(self.layout.used_event_addr(), self.last_used);
        }
        out
    }

    /// Number of used entries waiting (peek without consuming).
    pub fn used_pending<M: GuestMemory>(&self, mem: &M) -> u16 {
        mem.read_u16(self.layout.used_idx_addr())
            .wrapping_sub(self.last_used)
    }

    /// Our consumption point (`last_used`), for interrupt-policy
    /// decisions.
    pub fn last_used(&self) -> u16 {
        self.last_used
    }

    /// Park `used_event` half a ring ahead of our consumption point —
    /// the EVENT_IDX equivalent of `virtqueue_disable_cb()`: the device
    /// will not interrupt for the next 2¹⁵ completions. virtio-net uses
    /// this on the TX queue, whose completions are harvested lazily on
    /// later transmits.
    pub fn park_used_event<M: GuestMemory>(&self, mem: &mut M) {
        if self.event_idx {
            mem.write_u16(
                self.layout.used_event_addr(),
                self.last_used.wrapping_add(0x7FFF),
            );
        }
    }

    /// Set/clear `AVAIL_F_NO_INTERRUPT` (a polling driver's interrupt
    /// suppression when EVENT_IDX is off).
    pub fn set_no_interrupt<M: GuestMemory>(&self, mem: &mut M, suppress: bool) {
        mem.write_u16(
            self.layout.avail_flags_addr(),
            if suppress { AVAIL_F_NO_INTERRUPT } else { 0 },
        );
    }

    fn free_chain<M: GuestMemory>(&mut self, mem: &mut M, head: u16) {
        let n = self.chain_len[head as usize];
        assert!(n > 0, "freeing a chain that was never added: head {head}");
        self.chain_len[head as usize] = 0;
        // Walk to the tail, relink tail → old free head.
        let mut idx = head;
        for _ in 1..n {
            let d = Desc::read_at(mem, self.layout.desc, idx);
            debug_assert!(d.has_next(), "chain shorter than recorded");
            idx = d.next;
        }
        let mut tail = Desc::read_at(mem, self.layout.desc, idx);
        tail.flags |= DESC_F_NEXT;
        tail.next = self.free_head;
        tail.write_at(mem, self.layout.desc, idx);
        self.free_head = head;
        self.num_free += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::VecMemory;

    fn setup(size: u16, event_idx: bool) -> (VecMemory, DriverQueue) {
        let mut mem = VecMemory::new(1 << 20);
        let layout = VirtqueueLayout::contiguous(0x1000, size);
        let q = DriverQueue::new(&mut mem, layout, event_idx);
        (mem, q)
    }

    #[test]
    fn fresh_queue_all_free() {
        let (_, q) = setup(8, false);
        assert_eq!(q.num_free(), 8);
        assert_eq!(q.avail_idx(), 0);
    }

    #[test]
    fn add_chain_writes_descriptors() {
        let (mut mem, mut q) = setup(8, false);
        let head = q
            .add_chain(
                &mut mem,
                &[
                    BufferSpec::readable(0x10_000, 64),
                    BufferSpec::writable(0x20_000, 128),
                ],
            )
            .unwrap();
        assert_eq!(q.num_free(), 6);
        let d0 = Desc::read_at(&mem, q.layout().desc, head);
        assert_eq!(d0.addr, 0x10_000);
        assert_eq!(d0.len, 64);
        assert!(d0.has_next() && !d0.is_write());
        let d1 = Desc::read_at(&mem, q.layout().desc, d0.next);
        assert_eq!(d1.addr, 0x20_000);
        assert!(!d1.has_next() && d1.is_write());
    }

    #[test]
    fn publish_updates_avail_ring_and_idx() {
        let (mut mem, mut q) = setup(8, false);
        let head = q
            .add_chain(&mut mem, &[BufferSpec::readable(0x1_0000, 10)])
            .unwrap();
        q.publish(&mut mem, head);
        assert_eq!(mem.read_u16(q.layout().avail_idx_addr()), 1);
        assert_eq!(mem.read_u16(q.layout().avail_ring_addr(0)), head);
    }

    #[test]
    fn chain_order_rule_enforced() {
        let (mut mem, mut q) = setup(8, false);
        let err = q
            .add_chain(
                &mut mem,
                &[BufferSpec::writable(0, 8), BufferSpec::readable(8, 8)],
            )
            .unwrap_err();
        assert_eq!(err, QueueError::WritableBeforeReadable);
        assert_eq!(q.num_free(), 8, "failed add must not leak descriptors");
    }

    #[test]
    fn exhaustion_and_reuse() {
        let (mut mem, mut q) = setup(4, false);
        let mut heads = Vec::new();
        for i in 0..4 {
            heads.push(
                q.add_and_publish(&mut mem, &[BufferSpec::readable(i * 64, 64)])
                    .unwrap(),
            );
        }
        assert_eq!(q.num_free(), 0);
        assert!(matches!(
            q.add_chain(&mut mem, &[BufferSpec::readable(0, 1)]),
            Err(QueueError::NoSpace { needed: 1, free: 0 })
        ));
        // Device completes the second chain.
        mem.write_u32(q.layout().used_ring_addr(0), heads[1] as u32);
        mem.write_u32(q.layout().used_ring_addr(0) + 4, 0);
        mem.write_u16(q.layout().used_idx_addr(), 1);
        let elem = q.pop_used(&mut mem).unwrap();
        assert_eq!(elem.id, heads[1] as u32);
        assert_eq!(q.num_free(), 1);
        // And the freed descriptor is immediately reusable.
        let h = q
            .add_chain(&mut mem, &[BufferSpec::readable(0, 1)])
            .unwrap();
        assert_eq!(h, heads[1]);
    }

    #[test]
    fn pop_used_empty_returns_none() {
        let (mut mem, mut q) = setup(4, false);
        assert!(q.pop_used(&mut mem).is_none());
        assert_eq!(q.used_pending(&mem), 0);
    }

    #[test]
    fn notify_gated_by_no_notify_flag() {
        let (mut mem, mut q) = setup(4, false);
        let old = q.avail_idx();
        let h = q
            .add_chain(&mut mem, &[BufferSpec::readable(0, 4)])
            .unwrap();
        q.publish(&mut mem, h);
        assert!(q.needs_notify(&mem, old));
        // Device sets NO_NOTIFY; next publish needs no doorbell.
        mem.write_u16(q.layout().used_flags_addr(), USED_F_NO_NOTIFY);
        let old = q.avail_idx();
        let h = q
            .add_chain(&mut mem, &[BufferSpec::readable(0, 4)])
            .unwrap();
        q.publish(&mut mem, h);
        assert!(!q.needs_notify(&mem, old));
        assert_eq!(q.notifications_sent, 1);
    }

    #[test]
    fn notify_event_idx_mode() {
        let (mut mem, mut q) = setup(8, true);
        // Device asks to be notified when avail idx crosses 2
        // (avail_event = 1 means: notify on the publish that makes
        // idx exceed 1).
        mem.write_u16(q.layout().avail_event_addr(), 1);
        let old = q.avail_idx();
        for i in 0..2 {
            let h = q
                .add_chain(&mut mem, &[BufferSpec::readable(i * 8, 8)])
                .unwrap();
            q.publish(&mut mem, h);
        }
        assert!(q.needs_notify(&mem, old)); // crossed event 1 (0→2)
        let old = q.avail_idx();
        let h = q
            .add_chain(&mut mem, &[BufferSpec::readable(64, 8)])
            .unwrap();
        q.publish(&mut mem, h);
        assert!(!q.needs_notify(&mem, old)); // 2→3 does not recross
    }

    #[test]
    fn used_event_written_when_event_idx() {
        let (mut mem, mut q) = setup(4, true);
        let h = q
            .add_and_publish(&mut mem, &[BufferSpec::readable(0, 4)])
            .unwrap();
        mem.write_u32(q.layout().used_ring_addr(0), h as u32);
        mem.write_u32(q.layout().used_ring_addr(0) + 4, 4);
        mem.write_u16(q.layout().used_idx_addr(), 1);
        q.pop_used(&mut mem).unwrap();
        assert_eq!(mem.read_u16(q.layout().used_event_addr()), 1);
    }

    #[test]
    fn multi_descriptor_chain_frees_fully() {
        let (mut mem, mut q) = setup(8, false);
        let bufs: Vec<BufferSpec> = (0..5)
            .map(|i| BufferSpec::readable(i as u64 * 64, 64))
            .collect();
        let head = q.add_and_publish(&mut mem, &bufs).unwrap();
        assert_eq!(q.num_free(), 3);
        mem.write_u32(q.layout().used_ring_addr(0), head as u32);
        mem.write_u32(q.layout().used_ring_addr(0) + 4, 0);
        mem.write_u16(q.layout().used_idx_addr(), 1);
        q.pop_used(&mut mem).unwrap();
        assert_eq!(q.num_free(), 8);
    }

    #[test]
    fn publish_batch_single_index_store() {
        let (mut mem, mut q) = setup(8, false);
        let heads: Vec<u16> = (0..3)
            .map(|i| {
                q.add_chain(&mut mem, &[BufferSpec::readable(i * 64, 64)])
                    .unwrap()
            })
            .collect();
        // Nothing published yet: the index in memory is still 0.
        assert_eq!(mem.read_u16(q.layout().avail_idx_addr()), 0);
        let new_idx = q.publish_batch(&mut mem, &heads).unwrap();
        assert_eq!(new_idx, 3);
        assert_eq!(mem.read_u16(q.layout().avail_idx_addr()), 3);
        for (i, &h) in heads.iter().enumerate() {
            assert_eq!(mem.read_u16(q.layout().avail_ring_addr(i as u16)), h);
        }
    }

    #[test]
    fn publish_batch_empty_is_noop() {
        let (mut mem, mut q) = setup(4, false);
        assert_eq!(q.publish_batch(&mut mem, &[]).unwrap(), 0);
        assert_eq!(mem.read_u16(q.layout().avail_idx_addr()), 0);
    }

    #[test]
    fn publish_batch_wraps_ring() {
        let (mut mem, mut q) = setup(4, false);
        // Advance the ring close to wrap: publish and complete 3 chains.
        for round in 0..3_u16 {
            let h = q
                .add_and_publish(&mut mem, &[BufferSpec::readable(0, 4)])
                .unwrap();
            mem.write_u32(q.layout().used_ring_addr(round % 4), h as u32);
            mem.write_u32(q.layout().used_ring_addr(round % 4) + 4, 0);
            mem.write_u16(q.layout().used_idx_addr(), round + 1);
            q.pop_used(&mut mem).unwrap();
        }
        // A 2-entry batch now spans slots 3 and 0.
        let heads: Vec<u16> = (0..2)
            .map(|i| {
                q.add_chain(&mut mem, &[BufferSpec::readable(i * 8, 8)])
                    .unwrap()
            })
            .collect();
        assert_eq!(q.publish_batch(&mut mem, &heads).unwrap(), 5);
        assert_eq!(mem.read_u16(q.layout().avail_ring_addr(3)), heads[0]);
        assert_eq!(mem.read_u16(q.layout().avail_ring_addr(0)), heads[1]);
    }

    #[test]
    fn publish_batch_longer_than_ring_is_rejected() {
        // Regression: a batch longer than the queue size used to lap the
        // avail ring, overwriting its own earlier entries, and still
        // advance the index past them — a corrupt ring from the device's
        // point of view.
        let (mut mem, mut q) = setup(4, false);
        let heads = [0u16, 1, 2, 3, 0];
        let err = q.publish_batch(&mut mem, &heads).unwrap_err();
        assert_eq!(err, QueueError::NoSpace { needed: 5, free: 4 });
        // Nothing was written: index still 0, ring untouched.
        assert_eq!(q.avail_idx(), 0);
        assert_eq!(mem.read_u16(q.layout().avail_idx_addr()), 0);
        for slot in 0..4_u16 {
            assert_eq!(mem.read_u16(q.layout().avail_ring_addr(slot)), 0);
        }
        // A full-ring batch is still fine.
        assert_eq!(q.publish_batch(&mut mem, &heads[..4]).unwrap(), 4);
    }

    #[test]
    fn pop_used_batch_consumes_and_frees() {
        let (mut mem, mut q) = setup(8, true);
        let heads: Vec<u16> = (0..4)
            .map(|i| {
                q.add_and_publish(&mut mem, &[BufferSpec::readable(i * 64, 64)])
                    .unwrap()
            })
            .collect();
        assert_eq!(q.num_free(), 4);
        for (slot, &h) in heads.iter().enumerate() {
            mem.write_u32(q.layout().used_ring_addr(slot as u16), h as u32);
            mem.write_u32(q.layout().used_ring_addr(slot as u16) + 4, 64);
        }
        mem.write_u16(q.layout().used_idx_addr(), 4);
        // Bounded batch takes only `max`…
        let first = q.pop_used_batch(&mut mem, 3);
        assert_eq!(first.len(), 3);
        assert_eq!(
            first.iter().map(|e| e.id).collect::<Vec<_>>(),
            heads[..3].iter().map(|&h| h as u32).collect::<Vec<_>>()
        );
        // …and writes used_event once, at the post-batch position.
        assert_eq!(mem.read_u16(q.layout().used_event_addr()), 3);
        let rest = q.pop_used_batch(&mut mem, 16);
        assert_eq!(rest.len(), 1);
        assert_eq!(q.num_free(), 8);
        assert_eq!(mem.read_u16(q.layout().used_event_addr()), 4);
        // Empty batch leaves used_event untouched.
        assert!(q.pop_used_batch(&mut mem, 16).is_empty());
        assert_eq!(mem.read_u16(q.layout().used_event_addr()), 4);
    }

    #[test]
    fn batch_roundtrip_matches_serial_ops() {
        // The batched APIs must leave identical driver state to the
        // one-at-a-time APIs they replace.
        let (mut mem_a, mut qa) = setup(8, true);
        let (mut mem_b, mut qb) = setup(8, true);
        let heads_a: Vec<u16> = (0..5)
            .map(|i| {
                qa.add_chain(&mut mem_a, &[BufferSpec::readable(i * 32, 32)])
                    .unwrap()
            })
            .collect();
        let heads_b: Vec<u16> = (0..5)
            .map(|i| {
                qb.add_chain(&mut mem_b, &[BufferSpec::readable(i * 32, 32)])
                    .unwrap()
            })
            .collect();
        assert_eq!(heads_a, heads_b);
        for &h in &heads_a {
            qa.publish(&mut mem_a, h);
        }
        qb.publish_batch(&mut mem_b, &heads_b).unwrap();
        assert_eq!(qa.avail_idx(), qb.avail_idx());
        for slot in 0..5_u16 {
            assert_eq!(
                mem_a.read_u16(qa.layout().avail_ring_addr(slot)),
                mem_b.read_u16(qb.layout().avail_ring_addr(slot))
            );
        }
        for (mem, q, heads) in [
            (&mut mem_a, &mut qa, &heads_a),
            (&mut mem_b, &mut qb, &heads_b),
        ] {
            for (slot, &h) in heads.iter().enumerate() {
                mem.write_u32(q.layout().used_ring_addr(slot as u16), h as u32);
                mem.write_u32(q.layout().used_ring_addr(slot as u16) + 4, 0);
            }
            mem.write_u16(q.layout().used_idx_addr(), 5);
        }
        let mut serial = Vec::new();
        while let Some(e) = qa.pop_used(&mut mem_a) {
            serial.push(e.id);
        }
        let batched: Vec<u32> = qb
            .pop_used_batch(&mut mem_b, usize::MAX)
            .iter()
            .map(|e| e.id)
            .collect();
        assert_eq!(serial, batched);
        assert_eq!(qa.num_free(), qb.num_free());
        assert_eq!(qa.last_used(), qb.last_used());
        assert_eq!(
            mem_a.read_u16(qa.layout().used_event_addr()),
            mem_b.read_u16(qb.layout().used_event_addr())
        );
    }

    #[test]
    fn avail_idx_wraps() {
        let (mut mem, mut q) = setup(2, false);
        for round in 0..40_u32 {
            let h = q
                .add_and_publish(&mut mem, &[BufferSpec::readable(0, 4)])
                .unwrap();
            // Device immediately completes it.
            let slot = (round % 2) as u16;
            mem.write_u32(q.layout().used_ring_addr(slot), h as u32);
            mem.write_u32(q.layout().used_ring_addr(slot) + 4, 0);
            mem.write_u16(q.layout().used_idx_addr(), (round + 1) as u16);
            q.pop_used(&mut mem).unwrap();
        }
        assert_eq!(q.avail_idx(), 40);
        assert_eq!(q.num_free(), 2);
    }
}
