//! # vf-virtio — a from-scratch VirtIO 1.2 implementation
//!
//! The protocol substrate of the paper: split virtqueues laid out in raw
//! little-endian guest memory, operated from both sides —
//!
//! * [`driver_queue`] — the front-end (in-kernel driver) half: descriptor
//!   chains, avail publishing, doorbell suppression, used consumption;
//! * [`device_queue`] — the back-end (FPGA) half: step-wise avail/
//!   descriptor fetching (so the FPGA controller can charge each access
//!   as a timed PCIe DMA read), used publishing, interrupt suppression;
//! * [`ring`] — the `virtq_desc`/`virtq_avail`/`virtq_used` memory layout
//!   and the EVENT_IDX predicate;
//! * [`features`] — feature negotiation and the device-status state
//!   machine;
//! * [`pci`] — the modern-PCI transport register file (common config,
//!   ISR) the FPGA maps into BAR0;
//! * device types: [`net`] (this paper's extension), [`console`] (the
//!   prior work's device), [`block`] (additional type), enumerated by
//!   [`device_type`];
//! * [`mem`] — the [`mem::GuestMemory`] abstraction both
//!   sides go through.
//!
//! No external virtio crates are used; everything is implemented against
//! the VirtIO 1.2 specification, which is what the paper's FPGA framework
//! implements in RTL.
//!
//! ```
//! use vf_virtio::driver_queue::{BufferSpec, DriverQueue};
//! use vf_virtio::{DeviceQueue, GuestMemory, VecMemory, VirtqueueLayout};
//!
//! let mut mem = VecMemory::new(1 << 16);
//! let layout = VirtqueueLayout::contiguous(0x1000, 8);
//! let mut driver = DriverQueue::new(&mut mem, layout, false);
//! let mut device = DeviceQueue::new(layout, false, false);
//!
//! // Driver publishes a request/response chain; device consumes it.
//! mem.write(0x8000, b"ping");
//! driver
//!     .add_and_publish(
//!         &mut mem,
//!         &[BufferSpec::readable(0x8000, 4), BufferSpec::writable(0x9000, 4)],
//!     )
//!     .unwrap();
//! let chain = device.pop_chain(&mem).unwrap().unwrap();
//! assert_eq!(mem.read_vec(chain.bufs[0].addr, 4), b"ping");
//! mem.write(chain.bufs[1].addr, b"pong");
//! let old = device.complete(&mut mem, chain.head, 4);
//! assert!(device.should_interrupt(&mem, old));
//! assert_eq!(driver.pop_used(&mut mem).unwrap().len, 4);
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod console;
pub mod device_queue;
pub mod device_type;
pub mod driver_queue;
pub mod features;
pub mod loopback;
pub mod mem;
pub mod net;
pub mod packed;
pub mod pci;
pub mod ring;
pub mod rng;

pub use device_queue::{Chain, ChainBuf, ChainError, DeviceQueue};
pub use device_type::DeviceType;
pub use driver_queue::{BufferSpec, DriverQueue, QueueError};
pub use features::{driver_init, feature, status, Negotiation, NegotiationError};
pub use loopback::{AtomicMemory, LoopbackPair, MemHandle};
pub use mem::{GuestMemory, VecMemory};
pub use packed::{PackedBuffer, PackedDesc, PackedDeviceQueue, PackedDriverQueue};
pub use pci::{CfgEvent, CommonCfg, IsrStatus, QueueRegs, MSI_NO_VECTOR};
pub use ring::{vring_need_event, Desc, UsedElem, VirtqueueLayout};
