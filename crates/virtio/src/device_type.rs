//! VirtIO device types.
//!
//! The prior work \[14\] implemented a single device type (console); this
//! paper's contribution adds the network device, and the framework's claim
//! — "the modifications required to the FPGA design to support different
//! device types are minimal" (§IV-B) — is embodied here: a device type is
//! just an ID, a class code, a minimum queue set, and a device-specific
//! config blob. Everything else (rings, transport, DMA control) is shared.

/// The VirtIO device types implemented by the testbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum DeviceType {
    /// Network card (device type 1) — this paper's test case.
    Net = 1,
    /// Block device (device type 2) — "support for more VirtIO device
    /// types".
    Block = 2,
    /// Console (device type 3) — the device type of the prior work \[14\].
    Console = 3,
    /// Entropy source (device type 4) — the simplest device type: no
    /// device-specific config at all.
    Rng = 4,
}

impl DeviceType {
    /// Modern PCI device ID: `0x1040 + type`.
    pub fn pci_device_id(self) -> u16 {
        vf_pcie::VIRTIO_DEVICE_ID_BASE + self as u16
    }

    /// Transitional subsystem device ID (equals the VirtIO type).
    pub fn subsystem_id(self) -> u16 {
        self as u16
    }

    /// PCI class code `(base, sub, prog_if)` the device announces.
    pub fn class_code(self) -> (u8, u8, u8) {
        match self {
            DeviceType::Net => (0x02, 0x00, 0x00),   // network controller
            DeviceType::Block => (0x01, 0x80, 0x00), // mass storage, other
            DeviceType::Console => (0x07, 0x80, 0x00), // communication, other
            DeviceType::Rng => (0x10, 0x00, 0x00),   // encryption/entropy
        }
    }

    /// Minimum number of virtqueues the device type requires (without
    /// optional control/event queues).
    pub fn min_queues(self) -> u16 {
        match self {
            DeviceType::Net => 2,     // receiveq1 + transmitq1
            DeviceType::Block => 1,   // requestq
            DeviceType::Console => 2, // port0 rx + tx
            DeviceType::Rng => 1,     // requestq
        }
    }

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DeviceType::Net => "virtio-net",
            DeviceType::Block => "virtio-blk",
            DeviceType::Console => "virtio-console",
            DeviceType::Rng => "virtio-rng",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_ids_follow_modern_rule() {
        assert_eq!(DeviceType::Net.pci_device_id(), 0x1041);
        assert_eq!(DeviceType::Block.pci_device_id(), 0x1042);
        assert_eq!(DeviceType::Console.pci_device_id(), 0x1043);
        assert_eq!(DeviceType::Rng.pci_device_id(), 0x1044);
    }

    #[test]
    fn class_codes() {
        assert_eq!(DeviceType::Net.class_code().0, 0x02);
        assert_eq!(DeviceType::Block.class_code().0, 0x01);
        assert_eq!(DeviceType::Console.class_code().0, 0x07);
    }

    #[test]
    fn queue_minimums() {
        assert_eq!(DeviceType::Net.min_queues(), 2);
        assert_eq!(DeviceType::Block.min_queues(), 1);
        assert_eq!(DeviceType::Console.min_queues(), 2);
        assert_eq!(DeviceType::Rng.min_queues(), 1);
    }
}
