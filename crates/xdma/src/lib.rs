//! # vf-xdma — Xilinx XDMA IP model
//!
//! The vendor side of the paper's comparison: the DMA/Bridge Subsystem
//! for PCI Express (PG195) as used by the XDMA example design.
//!
//! * [`desc`] — the 32-byte scatter-gather descriptor format
//!   (magic 0xAD4B, control bits, linked list);
//! * [`engine`] — the H2C and C2H engine state machines, which fetch
//!   descriptors from host memory per transfer and move payload between
//!   host DRAM and card memory with PCIe-link + card-port timing;
//! * [`regs`] — the BAR register file (channel control/status, SGDMA
//!   descriptor registers, IRQ block) the character-device driver
//!   programs via MMIO.
//!
//! The corresponding host-side character-device driver model lives in
//! `vf-hostsw`; the example-design wrapper (BRAM behind the AXI-MM
//! interface) lives in `vf-fpga`.
//!
//! ```
//! use vf_pcie::{HostMemory, LinkConfig, PcieLink};
//! use vf_sim::Time;
//! use vf_xdma::{single_descriptor, CardMemory, ChannelDir, VecCardMemory, XdmaEngine};
//!
//! // One H2C transfer: descriptor in host memory, engine moves 64 bytes
//! // into card memory.
//! let mut link = PcieLink::new(LinkConfig::gen2_x2());
//! let mut host = HostMemory::new(0, 1 << 20);
//! let mut card = VecCardMemory::new(4096);
//! host.write(0x1_0000, &[7u8; 64]);
//! single_descriptor(0x1_0000, 0x100, 64).write_to(&mut host, 0x2000);
//! let mut engine = XdmaEngine::new(ChannelDir::H2C);
//! let out = engine
//!     .run(Time::ZERO, 0x2000, &mut link, &mut host, &mut card)
//!     .unwrap();
//! assert_eq!(out.bytes, 64);
//! let mut back = [0u8; 64];
//! card.read(0x100, &mut back);
//! assert_eq!(back, [7u8; 64]);
//! ```

#![warn(missing_docs)]

pub mod desc;
pub mod engine;
pub mod regs;

pub use desc::{build_list, single_descriptor, XdmaDesc, CTRL_COMPLETED, CTRL_EOP, CTRL_STOP};
pub use engine::{
    CardMemory, ChannelDir, DmaOutcome, EngineError, EngineTiming, VecCardMemory, XdmaEngine,
};
pub use regs::{BarAction, ChannelRegs, XdmaBar, VEC_C2H, VEC_H2C, VEC_USER0};
