//! The XDMA H2C/C2H engine state machines.
//!
//! Each direction has an independent scatter-gather engine. Started by a
//! control-register write, an engine:
//!
//! 1. fetches a descriptor from host memory (one 32-byte DMA read),
//! 2. moves the descriptor's payload — H2C: DMA-reads host memory and
//!    writes card memory; C2H: reads card memory and DMA-writes host
//!    memory,
//! 3. follows `next` until a descriptor with the STOP bit,
//! 4. stops, bumps the completed-descriptor count, and requests its
//!    channel interrupt.
//!
//! Timing comes from the PCIe link model plus the card-memory port; the
//! engine adds a start-of-transfer cost and a small per-descriptor
//! processing cost, all at the 8 ns fabric-clock granularity of the
//! paper's 125 MHz designs.

use vf_pcie::{HostMemory, PcieLink};
use vf_sim::{Time, FPGA_CYCLE};
use vf_virtio::GuestMemory;

use crate::desc::XdmaDesc;

/// Transfer direction of an engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChannelDir {
    /// Host-to-card: payload flows host DRAM → card memory.
    H2C,
    /// Card-to-host: payload flows card memory → host DRAM.
    C2H,
}

/// Card-side memory as seen by the DMA engine's data port.
///
/// Implementations supply both the functional storage and the fabric-side
/// port timing; `vf-fpga` provides BRAM and DDR models, and
/// [`VecCardMemory`] is a plain test double.
pub trait CardMemory {
    /// Read `buf.len()` bytes at card address `addr`.
    fn read(&self, addr: u64, buf: &mut [u8]);
    /// Write `data` at card address `addr`.
    fn write(&mut self, addr: u64, data: &[u8]);
    /// Time for the port to move `bytes` (pipelined with but additive to
    /// link time in this model — the engine is store-and-forward per
    /// descriptor, as the shallow-buffered 7-series configuration is).
    fn access_time(&self, bytes: usize) -> Time;
}

/// Simple card memory for unit tests: 64-bit port at one beat per cycle.
#[derive(Clone, Debug)]
pub struct VecCardMemory {
    data: Vec<u8>,
}

impl VecCardMemory {
    /// Zeroed card memory of `len` bytes at address 0.
    pub fn new(len: usize) -> Self {
        VecCardMemory { data: vec![0; len] }
    }
}

impl CardMemory for VecCardMemory {
    fn read(&self, addr: u64, buf: &mut [u8]) {
        let a = addr as usize;
        buf.copy_from_slice(&self.data[a..a + buf.len()]);
    }

    fn write(&mut self, addr: u64, data: &[u8]) {
        let a = addr as usize;
        self.data[a..a + data.len()].copy_from_slice(data);
    }

    fn access_time(&self, bytes: usize) -> Time {
        // 64-bit BRAM port at 125 MHz: 8 bytes per 8 ns cycle + 2 cycles
        // of address setup.
        FPGA_CYCLE * (2 + bytes.div_ceil(8) as u64)
    }
}

/// Engine timing knobs (fabric-clock costs, not link costs).
#[derive(Clone, Copy, Debug)]
pub struct EngineTiming {
    /// Control-write to first descriptor fetch (engine start FSM).
    pub start_overhead: Time,
    /// Per-descriptor decode/setup cost.
    pub per_desc: Time,
}

impl Default for EngineTiming {
    fn default() -> Self {
        EngineTiming {
            // ~30 fabric cycles to run up the engine.
            start_overhead: FPGA_CYCLE * 30,
            // ~12 cycles to decode a descriptor and (re)program the data
            // mover.
            per_desc: FPGA_CYCLE * 12,
        }
    }
}

/// Errors the engine reports in its status register.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// Descriptor magic mismatch at the given host address.
    BadMagic {
        /// Host address of the bad descriptor.
        addr: u64,
    },
    /// Descriptor list exceeded the sanity bound (runaway chain).
    RunawayList,
}

/// Result of one engine run.
#[derive(Clone, Debug)]
pub struct DmaOutcome {
    /// Instant the engine stopped (all data landed, status updated).
    pub completed_at: Time,
    /// Descriptors processed.
    pub descriptors: u32,
    /// Payload bytes moved.
    pub bytes: u64,
}

/// One DMA engine (one direction).
#[derive(Clone, Debug)]
pub struct XdmaEngine {
    /// Direction of this engine.
    pub dir: ChannelDir,
    /// Timing knobs.
    pub timing: EngineTiming,
    /// Lifetime statistics: runs completed.
    pub runs: u64,
    /// Lifetime statistics: bytes moved.
    pub total_bytes: u64,
    /// Lifetime statistics: descriptors fetched.
    pub total_descriptors: u64,
}

impl XdmaEngine {
    /// New idle engine.
    pub fn new(dir: ChannelDir) -> Self {
        XdmaEngine {
            dir,
            timing: EngineTiming::default(),
            runs: 0,
            total_bytes: 0,
            total_descriptors: 0,
        }
    }

    /// Execute a descriptor list starting at `desc_addr` (host memory),
    /// beginning at `now`. Moves data between `host` and `card`, returns
    /// when and how much.
    pub fn run<C: CardMemory>(
        &mut self,
        now: Time,
        desc_addr: u64,
        link: &mut PcieLink,
        host: &mut HostMemory,
        card: &mut C,
    ) -> Result<DmaOutcome, EngineError> {
        let mut t = now + self.timing.start_overhead;
        let mut addr = desc_addr;
        let mut descriptors = 0u32;
        let mut bytes = 0u64;
        loop {
            if descriptors >= 4096 {
                return Err(EngineError::RunawayList);
            }
            // Descriptor fetch: one 32-byte read from host memory.
            t = link.dma_read(t, addr, XdmaDesc::SIZE as usize);
            vf_trace::instant(
                vf_trace::Layer::Device,
                "xdma_desc_fetch",
                t,
                XdmaDesc::SIZE,
                0,
            );
            let desc = XdmaDesc::read_from(host, addr).ok_or(EngineError::BadMagic { addr })?;
            t += self.timing.per_desc;
            let len = desc.len as usize;
            match self.dir {
                ChannelDir::H2C => {
                    t = link.dma_read(t, desc.src, len);
                    let data = GuestMemory::read_vec(host, desc.src, len);
                    card.write(desc.dst, &data);
                    t += card.access_time(len);
                }
                ChannelDir::C2H => {
                    let mut data = vec![0u8; len];
                    card.read(desc.src, &mut data);
                    t += card.access_time(len);
                    t = link.dma_write(t, desc.dst, len);
                    GuestMemory::write(host, desc.dst, &data);
                }
            }
            descriptors += 1;
            bytes += len as u64;
            if desc.is_last() {
                break;
            }
            addr = desc.next;
        }
        self.runs += 1;
        self.total_bytes += bytes;
        self.total_descriptors += descriptors as u64;
        Ok(DmaOutcome {
            completed_at: t,
            descriptors,
            bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::{build_list, single_descriptor};
    use vf_pcie::LinkConfig;

    fn setup() -> (PcieLink, HostMemory, VecCardMemory) {
        (
            PcieLink::new(LinkConfig::gen2_x2()),
            HostMemory::new(0, 1 << 20),
            VecCardMemory::new(1 << 16),
        )
    }

    #[test]
    fn h2c_moves_data_to_card() {
        let (mut link, mut host, mut card) = setup();
        let payload: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        HostMemory::write(&mut host, 0x1_0000, &payload);
        single_descriptor(0x1_0000, 0x80, 256).write_to(&mut host, 0x2000);
        let mut eng = XdmaEngine::new(ChannelDir::H2C);
        let out = eng
            .run(Time::ZERO, 0x2000, &mut link, &mut host, &mut card)
            .unwrap();
        assert_eq!(out.descriptors, 1);
        assert_eq!(out.bytes, 256);
        let mut back = vec![0u8; 256];
        card.read(0x80, &mut back);
        assert_eq!(back, payload);
        assert!(out.completed_at > Time::ZERO);
    }

    #[test]
    fn c2h_moves_data_to_host() {
        let (mut link, mut host, mut card) = setup();
        let payload = vec![0xA5u8; 128];
        card.write(0x40, &payload);
        single_descriptor(0x40, 0x3_0000, 128).write_to(&mut host, 0x2000);
        let mut eng = XdmaEngine::new(ChannelDir::C2H);
        let out = eng
            .run(Time::ZERO, 0x2000, &mut link, &mut host, &mut card)
            .unwrap();
        assert_eq!(out.bytes, 128);
        assert_eq!(host.slice(0x3_0000, 128), &payload[..]);
    }

    #[test]
    fn multi_descriptor_list_walks_fully() {
        let (mut link, mut host, mut card) = setup();
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        HostMemory::write(&mut host, 0x1_0000, &payload);
        build_list(&mut host, 0x2000, 0x1_0000, 0, 1000, 256);
        let mut eng = XdmaEngine::new(ChannelDir::H2C);
        let out = eng
            .run(Time::ZERO, 0x2000, &mut link, &mut host, &mut card)
            .unwrap();
        assert_eq!(out.descriptors, 4);
        assert_eq!(out.bytes, 1000);
        let mut back = vec![0u8; 1000];
        card.read(0, &mut back);
        assert_eq!(back, payload);
    }

    #[test]
    fn bad_magic_faults() {
        let (mut link, mut host, mut card) = setup();
        HostMemory::write(&mut host, 0x2000, &[0u8; 32]); // zeroed ≠ magic
        let mut eng = XdmaEngine::new(ChannelDir::H2C);
        let err = eng
            .run(Time::ZERO, 0x2000, &mut link, &mut host, &mut card)
            .unwrap_err();
        assert_eq!(err, EngineError::BadMagic { addr: 0x2000 });
    }

    #[test]
    fn runaway_list_bounded() {
        let (mut link, mut host, mut card) = setup();
        // A descriptor that points at itself and never stops.
        let mut d = single_descriptor(0x100, 0x0, 4);
        d.control = 0; // no STOP
        d.next = 0x2000;
        d.write_to(&mut host, 0x2000);
        let mut eng = XdmaEngine::new(ChannelDir::H2C);
        let err = eng
            .run(Time::ZERO, 0x2000, &mut link, &mut host, &mut card)
            .unwrap_err();
        assert_eq!(err, EngineError::RunawayList);
    }

    #[test]
    fn larger_transfers_take_longer() {
        let mut times = Vec::new();
        for len in [64u32, 256, 1024] {
            let (mut link, mut host, mut card) = setup();
            HostMemory::write(&mut host, 0x1_0000, &vec![1u8; len as usize]);
            single_descriptor(0x1_0000, 0, len).write_to(&mut host, 0x2000);
            let mut eng = XdmaEngine::new(ChannelDir::H2C);
            let out = eng
                .run(Time::ZERO, 0x2000, &mut link, &mut host, &mut card)
                .unwrap();
            times.push(out.completed_at);
        }
        assert!(times[0] < times[1] && times[1] < times[2]);
    }

    #[test]
    fn stats_accumulate() {
        let (mut link, mut host, mut card) = setup();
        let mut eng = XdmaEngine::new(ChannelDir::H2C);
        for i in 0..3 {
            single_descriptor(0x1_0000, 0, 64).write_to(&mut host, 0x2000 + i * 64);
            eng.run(
                Time::from_us(i),
                0x2000 + i * 64,
                &mut link,
                &mut host,
                &mut card,
            )
            .unwrap();
        }
        assert_eq!(eng.runs, 3);
        assert_eq!(eng.total_bytes, 192);
        assert_eq!(eng.total_descriptors, 3);
    }
}
