//! XDMA register space (PG195 target model).
//!
//! The XDMA BAR is divided into fixed 4 KiB "targets":
//!
//! ```text
//! 0x0000  H2C channel 0      0x1000  C2H channel 0
//! 0x2000  IRQ block          0x3000  config block
//! 0x4000  H2C SGDMA ch 0     0x5000  C2H SGDMA ch 0
//! 0x6000  SGDMA common
//! ```
//!
//! The character-device driver programs a transfer by writing the first
//! descriptor address into the SGDMA target and setting the RUN bit in
//! the channel's control register — once per `read()`/`write()` call,
//! which is the per-transfer software overhead the paper attributes to
//! the vendor design (§IV-A).

/// Target base offsets within the XDMA BAR.
pub mod target {
    /// H2C channel 0 registers.
    pub const H2C: u64 = 0x0000;
    /// C2H channel 0 registers.
    pub const C2H: u64 = 0x1000;
    /// IRQ block.
    pub const IRQ: u64 = 0x2000;
    /// Config block.
    pub const CONFIG: u64 = 0x3000;
    /// H2C SGDMA (descriptor) registers.
    pub const H2C_SGDMA: u64 = 0x4000;
    /// C2H SGDMA (descriptor) registers.
    pub const C2H_SGDMA: u64 = 0x5000;
}

/// Register offsets within a channel target.
pub mod chan {
    /// Identifier (RO).
    pub const IDENTIFIER: u64 = 0x00;
    /// Control: bit 0 = RUN.
    pub const CONTROL: u64 = 0x04;
    /// Status (RO): bit 0 = BUSY, bit 1 = DESC_STOPPED.
    pub const STATUS: u64 = 0x40;
    /// Status read-and-clear.
    pub const STATUS_RC: u64 = 0x44;
    /// Completed descriptor count (RO).
    pub const COMPLETED: u64 = 0x48;
    /// Interrupt enable mask: bit 1 = DESC_STOPPED interrupt.
    pub const INT_ENABLE: u64 = 0x90;
}

/// Register offsets within an SGDMA target.
pub mod sgdma {
    /// First descriptor address, low 32 bits.
    pub const DESC_LO: u64 = 0x80;
    /// First descriptor address, high 32 bits.
    pub const DESC_HI: u64 = 0x84;
    /// Adjacent descriptor count hint.
    pub const DESC_ADJ: u64 = 0x88;
}

/// Register offsets within the IRQ block.
pub mod irq {
    /// Channel interrupt enable mask.
    pub const CHANNEL_INT_EN: u64 = 0x10;
    /// Channel interrupt request/pending (RO).
    pub const CHANNEL_INT_PENDING: u64 = 0x44;
    /// User interrupt enable mask.
    pub const USER_INT_EN: u64 = 0x04;
    /// User interrupt request/pending (RO).
    pub const USER_INT_PENDING: u64 = 0x40;
}

/// Control register RUN bit.
pub const CTRL_RUN: u32 = 1;
/// Status BUSY bit.
pub const STAT_BUSY: u32 = 1;
/// Status DESC_STOPPED bit (set when the engine retires a STOP
/// descriptor).
pub const STAT_DESC_STOPPED: u32 = 1 << 1;
/// Interrupt-enable bit for DESC_STOPPED.
pub const IE_DESC_STOPPED: u32 = 1 << 1;

/// Software-visible state of one channel (control/status/SGDMA).
#[derive(Clone, Debug, Default)]
pub struct ChannelRegs {
    /// RUN bit state.
    pub run: bool,
    /// BUSY status.
    pub busy: bool,
    /// DESC_STOPPED status.
    pub stopped: bool,
    /// Completed descriptor counter.
    pub completed: u32,
    /// Interrupt-enable mask.
    pub int_enable: u32,
    /// First-descriptor address (SGDMA target).
    pub desc_addr: u64,
    /// Adjacent-descriptor hint.
    pub desc_adj: u32,
}

impl ChannelRegs {
    fn status_bits(&self) -> u32 {
        (self.busy as u32 * STAT_BUSY) | (self.stopped as u32 * STAT_DESC_STOPPED)
    }
}

/// MSI-X vector assignments used by the reference driver: channel
/// interrupts first (H2C = 0, C2H = 1), user interrupts after.
pub const VEC_H2C: usize = 0;
/// C2H channel interrupt vector.
pub const VEC_C2H: usize = 1;
/// First user-interrupt vector.
pub const VEC_USER0: usize = 2;

/// Action the device model must take after a register write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarAction {
    /// Start the H2C engine at its programmed descriptor address.
    StartH2C,
    /// Start the C2H engine.
    StartC2H,
}

/// The XDMA BAR register file (both channels + IRQ block).
#[derive(Clone, Debug)]
pub struct XdmaBar {
    /// H2C channel registers.
    pub h2c: ChannelRegs,
    /// C2H channel registers.
    pub c2h: ChannelRegs,
    /// Channel interrupt enable mask (IRQ block).
    pub channel_int_en: u32,
    /// User interrupt enable mask (IRQ block).
    pub user_int_en: u32,
    /// Channel interrupt pending bits.
    pub channel_pending: u32,
    /// User interrupt pending bits.
    pub user_pending: u32,
}

impl XdmaBar {
    /// Reset-state register file.
    pub fn new() -> Self {
        XdmaBar {
            h2c: ChannelRegs::default(),
            c2h: ChannelRegs::default(),
            channel_int_en: 0,
            user_int_en: 0,
            channel_pending: 0,
            user_pending: 0,
        }
    }

    /// 32-bit register read at BAR offset `off`.
    pub fn read32(&mut self, off: u64) -> u32 {
        let (tgt, reg) = (off & !0xFFF, off & 0xFFF);
        match tgt {
            target::H2C | target::C2H => {
                let ch = if tgt == target::H2C {
                    &mut self.h2c
                } else {
                    &mut self.c2h
                };
                match reg {
                    chan::IDENTIFIER => {
                        // 0x1FC?_??06: subsystem 0x1fc, target id, version.
                        let id = if tgt == target::H2C { 0 } else { 1 };
                        0x1FC0_0006 | (id << 16)
                    }
                    chan::CONTROL => ch.run as u32,
                    chan::STATUS => ch.status_bits(),
                    chan::STATUS_RC => {
                        let bits = ch.status_bits();
                        ch.stopped = false;
                        bits
                    }
                    chan::COMPLETED => ch.completed,
                    chan::INT_ENABLE => ch.int_enable,
                    _ => 0,
                }
            }
            target::IRQ => match reg {
                irq::CHANNEL_INT_EN => self.channel_int_en,
                irq::USER_INT_EN => self.user_int_en,
                irq::CHANNEL_INT_PENDING => self.channel_pending,
                irq::USER_INT_PENDING => self.user_pending,
                _ => 0,
            },
            target::CONFIG => match reg {
                0x00 => 0x1FC3_0006, // config block identifier
                _ => 0,
            },
            target::H2C_SGDMA | target::C2H_SGDMA => {
                let ch = if tgt == target::H2C_SGDMA {
                    &self.h2c
                } else {
                    &self.c2h
                };
                match reg {
                    sgdma::DESC_LO => ch.desc_addr as u32,
                    sgdma::DESC_HI => (ch.desc_addr >> 32) as u32,
                    sgdma::DESC_ADJ => ch.desc_adj,
                    _ => 0,
                }
            }
            _ => 0,
        }
    }

    /// 32-bit register write at BAR offset `off`; may demand an action.
    pub fn write32(&mut self, off: u64, val: u32) -> Option<BarAction> {
        let (tgt, reg) = (off & !0xFFF, off & 0xFFF);
        match tgt {
            target::H2C | target::C2H => {
                let is_h2c = tgt == target::H2C;
                let ch = if is_h2c { &mut self.h2c } else { &mut self.c2h };
                match reg {
                    chan::CONTROL => {
                        let was = ch.run;
                        ch.run = val & CTRL_RUN != 0;
                        if ch.run && !was {
                            ch.busy = true;
                            ch.stopped = false;
                            return Some(if is_h2c {
                                BarAction::StartH2C
                            } else {
                                BarAction::StartC2H
                            });
                        }
                    }
                    chan::STATUS
                        // Write-1-to-clear.
                        if val & STAT_DESC_STOPPED != 0 => {
                            ch.stopped = false;
                        }
                    chan::INT_ENABLE => ch.int_enable = val,
                    _ => {}
                }
            }
            target::IRQ => match reg {
                irq::CHANNEL_INT_EN => self.channel_int_en = val,
                irq::USER_INT_EN => self.user_int_en = val,
                _ => {}
            },
            target::H2C_SGDMA | target::C2H_SGDMA => {
                let ch = if tgt == target::H2C_SGDMA {
                    &mut self.h2c
                } else {
                    &mut self.c2h
                };
                match reg {
                    sgdma::DESC_LO => {
                        ch.desc_addr = (ch.desc_addr & !0xFFFF_FFFF) | val as u64;
                    }
                    sgdma::DESC_HI => {
                        ch.desc_addr = (ch.desc_addr & 0xFFFF_FFFF) | ((val as u64) << 32);
                    }
                    sgdma::DESC_ADJ => ch.desc_adj = val,
                    _ => {}
                }
            }
            _ => {}
        }
        None
    }

    /// Engine-side completion: update channel status and decide whether
    /// the channel interrupt fires (enabled in both the channel mask and
    /// the IRQ block). Returns the MSI-X vector to raise, if any.
    pub fn complete_channel(
        &mut self,
        dir: crate::engine::ChannelDir,
        descriptors: u32,
    ) -> Option<usize> {
        use crate::engine::ChannelDir;
        let (ch, bit, vec) = match dir {
            ChannelDir::H2C => (&mut self.h2c, 1u32 << 0, VEC_H2C),
            ChannelDir::C2H => (&mut self.c2h, 1u32 << 1, VEC_C2H),
        };
        ch.busy = false;
        ch.run = false;
        ch.stopped = true;
        ch.completed = ch.completed.wrapping_add(descriptors);
        let channel_armed = ch.int_enable & IE_DESC_STOPPED != 0;
        let block_armed = self.channel_int_en & bit != 0;
        if channel_armed && block_armed {
            self.channel_pending |= bit;
            Some(vec)
        } else {
            None
        }
    }

    /// Host acknowledges a channel interrupt (clears the pending bit).
    pub fn ack_channel(&mut self, dir: crate::engine::ChannelDir) {
        use crate::engine::ChannelDir;
        let bit = match dir {
            ChannelDir::H2C => 1u32 << 0,
            ChannelDir::C2H => 1u32 << 1,
        };
        self.channel_pending &= !bit;
    }

    /// User logic raises user interrupt `n`. Returns the MSI-X vector if
    /// enabled.
    pub fn raise_user_irq(&mut self, n: u32) -> Option<usize> {
        if self.user_int_en & (1 << n) != 0 {
            self.user_pending |= 1 << n;
            Some(VEC_USER0 + n as usize)
        } else {
            None
        }
    }
}

impl Default for XdmaBar {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ChannelDir;

    #[test]
    fn identifiers_distinguish_channels() {
        let mut bar = XdmaBar::new();
        let h2c = bar.read32(target::H2C + chan::IDENTIFIER);
        let c2h = bar.read32(target::C2H + chan::IDENTIFIER);
        assert_eq!(h2c >> 20, 0x1FC);
        assert_eq!((h2c >> 16) & 0xF, 0);
        assert_eq!((c2h >> 16) & 0xF, 1);
    }

    #[test]
    fn programming_sequence_starts_engine() {
        let mut bar = XdmaBar::new();
        bar.write32(target::H2C_SGDMA + sgdma::DESC_LO, 0x0012_3000);
        bar.write32(target::H2C_SGDMA + sgdma::DESC_HI, 0);
        assert_eq!(bar.h2c.desc_addr, 0x12_3000);
        let action = bar.write32(target::H2C + chan::CONTROL, CTRL_RUN);
        assert_eq!(action, Some(BarAction::StartH2C));
        assert!(bar.h2c.busy);
        // Writing RUN again while already running is a no-op.
        assert_eq!(bar.write32(target::H2C + chan::CONTROL, CTRL_RUN), None);
    }

    #[test]
    fn completion_updates_status_and_fires_when_armed() {
        let mut bar = XdmaBar::new();
        bar.write32(target::C2H + chan::INT_ENABLE, IE_DESC_STOPPED);
        bar.write32(target::IRQ + irq::CHANNEL_INT_EN, 0b10);
        bar.write32(target::C2H + chan::CONTROL, CTRL_RUN);
        let vec = bar.complete_channel(ChannelDir::C2H, 3);
        assert_eq!(vec, Some(VEC_C2H));
        assert!(!bar.c2h.busy && bar.c2h.stopped);
        assert_eq!(bar.read32(target::C2H + chan::COMPLETED), 3);
        assert_eq!(bar.read32(target::IRQ + irq::CHANNEL_INT_PENDING), 0b10);
        bar.ack_channel(ChannelDir::C2H);
        assert_eq!(bar.read32(target::IRQ + irq::CHANNEL_INT_PENDING), 0);
    }

    #[test]
    fn completion_silent_when_not_armed() {
        let mut bar = XdmaBar::new();
        bar.write32(target::H2C + chan::CONTROL, CTRL_RUN);
        assert_eq!(bar.complete_channel(ChannelDir::H2C, 1), None);
        assert!(bar.h2c.stopped);
    }

    #[test]
    fn status_rc_clears_stopped() {
        let mut bar = XdmaBar::new();
        bar.write32(target::H2C + chan::CONTROL, CTRL_RUN);
        bar.complete_channel(ChannelDir::H2C, 1);
        let st = bar.read32(target::H2C + chan::STATUS_RC);
        assert!(st & STAT_DESC_STOPPED != 0);
        assert_eq!(bar.read32(target::H2C + chan::STATUS), 0);
    }

    #[test]
    fn user_irqs_gated_by_enable() {
        let mut bar = XdmaBar::new();
        assert_eq!(bar.raise_user_irq(0), None);
        bar.write32(target::IRQ + irq::USER_INT_EN, 0b1);
        assert_eq!(bar.raise_user_irq(0), Some(VEC_USER0));
        assert_eq!(bar.read32(target::IRQ + irq::USER_INT_PENDING), 1);
    }

    #[test]
    fn unknown_offsets_read_zero() {
        let mut bar = XdmaBar::new();
        assert_eq!(bar.read32(0x7000), 0);
        assert_eq!(bar.read32(target::H2C + 0x200), 0);
    }
}
