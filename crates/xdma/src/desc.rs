//! XDMA descriptor format (Xilinx PG195, "Descriptor Format").
//!
//! The vendor DMA engine is scatter-gather: the driver builds a linked
//! list of 32-byte descriptors in host memory and writes the address of
//! the first one into the engine's SGDMA registers **for every
//! transfer** — the per-transfer information exchange the paper contrasts
//! with VirtIO's init-time exchange (§IV-A).
//!
//! ```text
//! word 0: [31:16] magic 0xAD4B | [13:8] nxt_adj | [7:0] control bits
//! word 1: length (bytes, 28 bits used)
//! word 2: src address low    word 3: src address high
//! word 4: dst address low    word 5: dst address high
//! word 6: next desc low      word 7: next desc high
//! ```
//!
//! For H2C, `src` is a host address and `dst` a card address; for C2H the
//! roles swap.

use vf_virtio::GuestMemory;

/// Magic value in descriptor word 0 bits \[31:16\].
pub const DESC_MAGIC: u16 = 0xAD4B;

/// Control bit: engine stops after this descriptor (end of list).
pub const CTRL_STOP: u8 = 1 << 0;
/// Control bit: engine writes a completion status writeback for this
/// descriptor.
pub const CTRL_COMPLETED: u8 = 1 << 1;
/// Control bit: end of packet (streaming interfaces).
pub const CTRL_EOP: u8 = 1 << 4;

/// One XDMA scatter-gather descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XdmaDesc {
    /// `CTRL_*` control bits.
    pub control: u8,
    /// Contiguous descriptors following this one (prefetch hint).
    pub nxt_adj: u8,
    /// Transfer length in bytes.
    pub len: u32,
    /// Source address.
    pub src: u64,
    /// Destination address.
    pub dst: u64,
    /// Address of the next descriptor (valid unless `CTRL_STOP`).
    pub next: u64,
}

impl XdmaDesc {
    /// Encoded size in host memory.
    pub const SIZE: u64 = 32;

    /// Maximum length per descriptor (28-bit field).
    pub const MAX_LEN: u32 = (1 << 28) - 1;

    /// Serialize into the 32-byte wire format.
    pub fn to_bytes(self) -> [u8; 32] {
        assert!(self.len <= Self::MAX_LEN);
        let mut b = [0u8; 32];
        let w0: u32 =
            ((DESC_MAGIC as u32) << 16) | ((self.nxt_adj as u32 & 0x3F) << 8) | self.control as u32;
        b[0..4].copy_from_slice(&w0.to_le_bytes());
        b[4..8].copy_from_slice(&self.len.to_le_bytes());
        b[8..12].copy_from_slice(&(self.src as u32).to_le_bytes());
        b[12..16].copy_from_slice(&((self.src >> 32) as u32).to_le_bytes());
        b[16..20].copy_from_slice(&(self.dst as u32).to_le_bytes());
        b[20..24].copy_from_slice(&((self.dst >> 32) as u32).to_le_bytes());
        b[24..28].copy_from_slice(&(self.next as u32).to_le_bytes());
        b[28..32].copy_from_slice(&((self.next >> 32) as u32).to_le_bytes());
        b
    }

    /// Deserialize; returns `None` if the magic is wrong (the engine's
    /// descriptor-error condition).
    pub fn from_bytes(b: &[u8; 32]) -> Option<XdmaDesc> {
        let w0 = u32::from_le_bytes(b[0..4].try_into().unwrap());
        if (w0 >> 16) as u16 != DESC_MAGIC {
            return None;
        }
        let rd32 = |o: usize| u32::from_le_bytes(b[o..o + 4].try_into().unwrap()) as u64;
        Some(XdmaDesc {
            control: (w0 & 0xFF) as u8,
            nxt_adj: ((w0 >> 8) & 0x3F) as u8,
            len: u32::from_le_bytes(b[4..8].try_into().unwrap()),
            src: rd32(8) | (rd32(12) << 32),
            dst: rd32(16) | (rd32(20) << 32),
            next: rd32(24) | (rd32(28) << 32),
        })
    }

    /// Write into host memory at `addr`.
    pub fn write_to<M: GuestMemory>(&self, mem: &mut M, addr: u64) {
        mem.write(addr, &self.to_bytes());
    }

    /// Read from host memory at `addr` (what the engine's descriptor
    /// fetch does functionally).
    pub fn read_from<M: GuestMemory>(mem: &M, addr: u64) -> Option<XdmaDesc> {
        let mut b = [0u8; 32];
        mem.read(addr, &mut b);
        XdmaDesc::from_bytes(&b)
    }

    /// True if the engine must stop after this descriptor.
    pub fn is_last(&self) -> bool {
        self.control & CTRL_STOP != 0
    }
}

/// Build a single-descriptor list for a contiguous transfer — what the
/// reference driver does for buffers that fit one descriptor (all the
/// paper's payloads do).
pub fn single_descriptor(src: u64, dst: u64, len: u32) -> XdmaDesc {
    XdmaDesc {
        control: CTRL_STOP | CTRL_COMPLETED | CTRL_EOP,
        nxt_adj: 0,
        len,
        src,
        dst,
        next: 0,
    }
}

/// Build a multi-descriptor linked list covering `(src, dst, len)` in
/// chunks of at most `max_chunk`, placing descriptors at `desc_base`,
/// `desc_base + 32`, ... Returns the descriptors (also useful for tests).
pub fn build_list<M: GuestMemory>(
    mem: &mut M,
    desc_base: u64,
    mut src: u64,
    mut dst: u64,
    len: u32,
    max_chunk: u32,
) -> Vec<XdmaDesc> {
    assert!(len > 0 && max_chunk > 0);
    let mut descs = Vec::new();
    let mut remaining = len;
    let mut addr = desc_base;
    while remaining > 0 {
        let take = remaining.min(max_chunk);
        remaining -= take;
        let last = remaining == 0;
        let d = XdmaDesc {
            control: if last {
                CTRL_STOP | CTRL_COMPLETED | CTRL_EOP
            } else {
                0
            },
            nxt_adj: 0,
            len: take,
            src,
            dst,
            next: if last { 0 } else { addr + XdmaDesc::SIZE },
        };
        d.write_to(mem, addr);
        descs.push(d);
        src += take as u64;
        dst += take as u64;
        addr += XdmaDesc::SIZE;
    }
    descs
}

#[cfg(test)]
mod tests {
    use super::*;
    use vf_virtio::VecMemory;

    #[test]
    fn round_trip() {
        let d = XdmaDesc {
            control: CTRL_STOP | CTRL_EOP,
            nxt_adj: 3,
            len: 4096,
            src: 0x1_2345_6789,
            dst: 0xFEED_0000,
            next: 0xABCD_0000_1234_5678,
        };
        assert_eq!(XdmaDesc::from_bytes(&d.to_bytes()), Some(d));
    }

    #[test]
    fn magic_is_checked() {
        let mut b = single_descriptor(0, 0, 4).to_bytes();
        b[3] = 0x00; // corrupt the magic's high byte
        assert_eq!(XdmaDesc::from_bytes(&b), None);
    }

    #[test]
    fn wire_layout() {
        let d = single_descriptor(0x11, 0x22, 0x100);
        let b = d.to_bytes();
        // Magic in the top half of word 0, little-endian.
        assert_eq!(b[2], 0x4B);
        assert_eq!(b[3], 0xAD);
        assert_eq!(b[0], CTRL_STOP | CTRL_COMPLETED | CTRL_EOP);
        assert_eq!(u32::from_le_bytes(b[4..8].try_into().unwrap()), 0x100);
    }

    #[test]
    fn memory_round_trip() {
        let mut mem = VecMemory::new(4096);
        let d = single_descriptor(0xAAAA, 0xBBBB, 64);
        d.write_to(&mut mem, 0x200);
        assert_eq!(XdmaDesc::read_from(&mem, 0x200), Some(d));
    }

    #[test]
    fn build_list_chains_and_conserves() {
        let mut mem = VecMemory::new(4096);
        let descs = build_list(&mut mem, 0x100, 0x10_000, 0x0, 1000, 256);
        assert_eq!(descs.len(), 4);
        assert_eq!(descs.iter().map(|d| d.len).sum::<u32>(), 1000);
        assert!(descs[..3].iter().all(|d| !d.is_last()));
        assert!(descs[3].is_last());
        // Links walk forward 32 bytes at a time.
        for (i, d) in descs[..3].iter().enumerate() {
            assert_eq!(d.next, 0x100 + 32 * (i as u64 + 1));
        }
        // Source/destination advance in step.
        assert_eq!(descs[1].src, 0x10_100);
        assert_eq!(descs[1].dst, 0x100);
        // And they round-trip through memory.
        let back = XdmaDesc::read_from(&mem, 0x120).unwrap();
        assert_eq!(back, descs[1]);
    }

    #[test]
    fn single_chunk_list() {
        let mut mem = VecMemory::new(4096);
        let descs = build_list(&mut mem, 0, 0, 0x100, 64, 4096);
        assert_eq!(descs.len(), 1);
        assert!(descs[0].is_last());
    }
}
