//! Property tests on the XDMA substrate: descriptor encode/decode,
//! list building, and engine data-movement integrity for arbitrary
//! transfer geometries.

use proptest::collection::vec;
use proptest::prelude::*;

use vf_pcie::{HostMemory, LinkConfig, PcieLink};
use vf_sim::Time;
use vf_xdma::desc::{build_list, XdmaDesc, CTRL_STOP};
use vf_xdma::{CardMemory, ChannelDir, VecCardMemory, XdmaEngine};

fn arb_desc() -> impl Strategy<Value = XdmaDesc> {
    (
        any::<u8>(),
        0u8..64,
        0u32..XdmaDesc::MAX_LEN,
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(control, nxt_adj, len, src, dst, next)| XdmaDesc {
            control,
            nxt_adj,
            len,
            src,
            dst,
            next,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn descriptor_encode_decode(desc in arb_desc()) {
        let bytes = desc.to_bytes();
        prop_assert_eq!(XdmaDesc::from_bytes(&bytes), Some(desc));
    }

    #[test]
    fn corrupted_magic_never_decodes(desc in arb_desc(), flip in 0u8..8) {
        let mut bytes = desc.to_bytes();
        // Flip a bit inside the magic halfword (bytes 2-3 of word 0).
        bytes[2 + (flip as usize) / 8] ^= 1 << (flip % 8);
        prop_assert_eq!(XdmaDesc::from_bytes(&bytes), None);
    }

    #[test]
    fn build_list_partitions_exactly(
        src in 0u64..0x10_000,
        dst in 0u64..0x10_000,
        len in 1u32..100_000,
        chunk_pow in 6u32..13,
    ) {
        let chunk = 1u32 << chunk_pow;
        let mut mem = HostMemory::new(0, 1 << 21);
        let descs = build_list(&mut mem, 0x8_0000, src, dst, len, chunk);
        prop_assert_eq!(descs.iter().map(|d| d.len).sum::<u32>(), len);
        prop_assert!(descs.iter().all(|d| d.len <= chunk));
        // Exactly the last descriptor stops.
        prop_assert_eq!(
            descs.iter().filter(|d| d.control & CTRL_STOP != 0).count(),
            1
        );
        prop_assert!(descs.last().unwrap().is_last());
        // Addresses tile the source/destination ranges contiguously.
        let mut s = src;
        let mut d = dst;
        for desc in &descs {
            prop_assert_eq!(desc.src, s);
            prop_assert_eq!(desc.dst, d);
            s += desc.len as u64;
            d += desc.len as u64;
        }
    }

    #[test]
    fn engine_moves_exact_bytes_h2c(
        payload in vec(any::<u8>(), 1..6000),
        card_dst in (0u64..1024).prop_map(|x| x * 8),
    ) {
        let mut link = PcieLink::new(LinkConfig::gen2_x2());
        let mut host = HostMemory::new(0, 1 << 21);
        let mut card = VecCardMemory::new(1 << 16);
        HostMemory::write(&mut host, 0x10_000, &payload);
        build_list(&mut host, 0x8_0000, 0x10_000, card_dst, payload.len() as u32, 4096);
        let mut eng = XdmaEngine::new(ChannelDir::H2C);
        let out = eng
            .run(Time::ZERO, 0x8_0000, &mut link, &mut host, &mut card)
            .unwrap();
        prop_assert_eq!(out.bytes, payload.len() as u64);
        let mut back = vec![0u8; payload.len()];
        card.read(card_dst, &mut back);
        prop_assert_eq!(back, payload);
    }

    #[test]
    fn engine_round_trip_h2c_then_c2h(payload in vec(any::<u8>(), 1..4000)) {
        let mut link = PcieLink::new(LinkConfig::gen2_x2());
        let mut host = HostMemory::new(0, 1 << 21);
        let mut card = VecCardMemory::new(1 << 16);
        HostMemory::write(&mut host, 0x10_000, &payload);
        build_list(&mut host, 0x8_0000, 0x10_000, 0x100, payload.len() as u32, 4096);
        let mut h2c = XdmaEngine::new(ChannelDir::H2C);
        let t1 = h2c
            .run(Time::ZERO, 0x8_0000, &mut link, &mut host, &mut card)
            .unwrap()
            .completed_at;
        build_list(&mut host, 0x9_0000, 0x100, 0x20_000, payload.len() as u32, 4096);
        let mut c2h = XdmaEngine::new(ChannelDir::C2H);
        let t2 = c2h
            .run(t1, 0x9_0000, &mut link, &mut host, &mut card)
            .unwrap()
            .completed_at;
        prop_assert!(t2 > t1);
        prop_assert_eq!(host.slice(0x20_000, payload.len()), &payload[..]);
    }
}
