//! SmartNIC firewall: the FPGA as a VirtIO network device running a
//! multi-rule firewall in front of the echo logic — the use case of the
//! paper's reference \[30\] (multi-core multi-rule VeBPF firewall for
//! FPGA IoT deployments).
//!
//! Drives the device model directly through its MMIO surface: probe,
//! queue bring-up, then a mix of allowed and blocked flows. Allowed
//! packets come back echoed; blocked ones are dropped in the fabric and
//! never reach the RX queue.
//!
//! ```sh
//! cargo run --release --example smartnic_firewall
//! ```

use vf_fpga::user_logic::{Firewall, FwAction, FwRule, UdpEcho};
use vf_fpga::{bar0, Persona, VirtioFpgaDevice};
use vf_hostsw::{
    build_udp_frame, probe, CostEngine, HostCosts, Ipv4Addr, MacAddr, UdpFlow, VirtioNetDriver,
    VirtioTransport,
};
use vf_pcie::{HostMemory, LinkConfig, PcieLink, MSI_ADDR_BASE};
use vf_sim::{NoiseModel, SimRng, Time};
use vf_virtio::net::VirtioNetConfig;
use vf_virtio::{feature, net};

struct Mmio<'a>(&'a mut VirtioFpgaDevice);

impl VirtioTransport for Mmio<'_> {
    fn common_read(&mut self, off: u64, len: usize) -> u64 {
        self.0.mmio_read(bar0::COMMON + off, len)
    }
    fn common_write(&mut self, off: u64, len: usize, val: u64) {
        self.0.mmio_write(bar0::COMMON + off, len, val);
    }
    fn device_cfg_read(&mut self, off: u64, len: usize) -> u64 {
        self.0.mmio_read(bar0::DEVICE_CFG + off, len)
    }
}

fn main() {
    // Firewall policy: allow UDP to the echo port (7) from 10.0.0.0/24,
    // allow DNS-ish traffic to port 53 from one host, drop the rest.
    let rules = vec![
        FwRule {
            src: Some((u32::from_be_bytes([10, 0, 0, 0]), 24)),
            dst_ports: Some((7, 7)),
            proto: Some(17),
            ..FwRule::any(FwAction::Accept)
        },
        FwRule {
            src: Some((u32::from_be_bytes([10, 0, 0, 50]), 32)),
            dst_ports: Some((53, 53)),
            proto: Some(17),
            ..FwRule::any(FwAction::Accept)
        },
        FwRule::any(FwAction::Drop),
    ];
    println!(
        "firewall: {} rules across 4 parallel match engines\n",
        rules.len()
    );

    let mut device = VirtioFpgaDevice::new(
        Persona::Net {
            cfg: VirtioNetConfig::testbed_default(),
        },
        net::feature::MAC | net::feature::MTU | net::feature::STATUS,
        &[256, 256],
        Box::new(Firewall::new(rules, 4, UdpEcho::default())),
    );

    // Host bring-up: driver init, probe, MSI-X.
    let mut mem = HostMemory::testbed_default();
    let mut link = PcieLink::new(LinkConfig::gen2_x2());
    let mut cost = CostEngine::new(
        HostCosts::fedora37(),
        NoiseModel::noiseless(),
        SimRng::new(1),
    );
    let want = feature::VERSION_1 | feature::RING_EVENT_IDX | net::feature::MAC;
    let mut driver = VirtioNetDriver::init(&mut mem, 256, want);
    let out = probe(&mut Mmio(&mut device), &driver, want).expect("probe");
    device.msix_enable();
    device.msix.program(0, MSI_ADDR_BASE, 0x40);
    device.msix.program(1, MSI_ADDR_BASE, 0x41);
    println!(
        "probed virtio-net (MAC {}, MTU {})\n",
        MacAddr(out.mac),
        out.mtu
    );

    // Traffic mix: echo flow (allowed), DNS flow from the wrong host
    // (blocked), telnet-ish flow (blocked).
    let flows = [
        (
            "echo 10.0.0.1 → :7   ",
            Ipv4Addr::new(10, 0, 0, 1),
            7u16,
            true,
        ),
        (
            "dns  10.0.0.9 → :53  ",
            Ipv4Addr::new(10, 0, 0, 9),
            53,
            false,
        ),
        (
            "dns  10.0.0.50 → :53 ",
            Ipv4Addr::new(10, 0, 0, 50),
            53,
            true,
        ),
        (
            "tcp-ish → :23        ",
            Ipv4Addr::new(10, 0, 0, 1),
            23,
            false,
        ),
    ];

    let mut now = Time::from_us(10);
    println!(
        "{:<22} {:>8} {:>10} {:>12}",
        "flow", "sent", "echoed", "latency(us)"
    );
    for (name, src_ip, dst_port, expect_pass) in flows {
        let mut echoed = 0;
        let mut latency_us = 0.0;
        let n = 50;
        for i in 0..n {
            let flow = UdpFlow {
                src_mac: MacAddr([2, 0, 0, 0, 0, 1]),
                dst_mac: MacAddr(out.mac),
                src_ip,
                dst_ip: Ipv4Addr::new(10, 0, 0, 2),
                src_port: 40_000 + i,
                dst_port,
            };
            let frame = build_udp_frame(&flow, i, &[0xAB; 64], true);
            let xr = driver.xmit(&mut mem, &frame, &mut cost);
            if xr.notify {
                // Ring the TX doorbell through the notify region, as the
                // real driver's MMIO write would.
                let notify_off =
                    bar0::NOTIFY + u64::from(net::TX_QUEUE) * u64::from(bar0::NOTIFY_MULTIPLIER);
                let ev = device.mmio_write(notify_off, 2, u64::from(net::TX_QUEUE));
                assert_eq!(ev, Some(vf_fpga::MmioEvent::Notify(net::TX_QUEUE)));
                let arrival = link.mmio_write(now, 2);
                let tx = device.process_tx_notify(arrival, net::TX_QUEUE, &mut mem, &mut link);
                for resp in &tx.responses {
                    let rxo = device.deliver_response(
                        resp.ready_at,
                        net::RX_QUEUE,
                        resp,
                        &mut mem,
                        &mut link,
                    );
                    if let Some(irq) = rxo.irq_at {
                        latency_us += (irq - now).as_us_f64();
                    }
                }
                now = tx.done_at + Time::from_us(5);
            }
            let (frames, _) = driver.napi_poll(&mut mem, &mut cost);
            echoed += frames.len();
        }
        let passed = echoed == n as usize;
        assert_eq!(passed, expect_pass, "policy mismatch for {name}");
        println!(
            "{:<22} {:>8} {:>10} {:>12}",
            name,
            n,
            echoed,
            if echoed > 0 {
                format!("{:.1}", latency_us / echoed as f64)
            } else {
                "-".into()
            }
        );
    }

    let stats = device.stats;
    println!(
        "\ndevice: {} doorbells, {} frames delivered, {} interrupts",
        stats.notifications, stats.rx_frames, stats.irqs_sent
    );
    println!(
        "hardware counters: h2c mean {:.2}us over {} packets, c2h mean {:.2}us",
        device.counters.h2c.stats.mean(),
        device.counters.h2c.count(),
        device.counters.c2h.stats.mean(),
    );
}
