//! A software back-end device on a real thread — the *left side* of the
//! paper's Fig. 1, running live.
//!
//! In classic paravirtualization the VirtIO driver talks to a back-end
//! emulated in host software (a vhost-style worker). This example runs
//! that worker on an actual OS thread, consuming the very same split
//! rings — over shared memory with the spec's fence discipline — that
//! the simulated FPGA consumes over PCIe. It is the symmetry the paper
//! exploits: the driver cannot tell a software device from the FPGA, so
//! replacing the worker with silicon requires no driver change at all.
//!
//! ```sh
//! cargo run --release --example sw_backend
//! ```

use std::thread;
use std::time::Instant;

use vf_virtio::driver_queue::BufferSpec;
use vf_virtio::{GuestMemory, LoopbackPair};

fn main() {
    const REQUESTS: u32 = 50_000;
    let LoopbackPair {
        mut driver,
        mut device,
        data_base,
    } = LoopbackPair::new(128, 1 << 22);

    // The back-end worker: echo each request chain into its response
    // buffer, uppercasing it (a "device" that does visible work).
    let worker = thread::spawn(move || {
        let mut served = 0u32;
        while served < REQUESTS {
            if let Some(chain) = device.try_take() {
                let req = &chain.bufs[0];
                let resp = &chain.bufs[1];
                let mut data = device.mem.read_vec(req.addr, req.len as usize);
                data.iter_mut().for_each(|b| *b = b.to_ascii_uppercase());
                device.mem.write(resp.addr, &data);
                device.complete(chain.head, resp.len);
                served += 1;
            } else {
                // Give the producer the core when the queue is dry (the
                // sandboxed CI runners this demo targets may pin both
                // threads to one CPU).
                thread::yield_now();
            }
        }
        served
    });

    // The driver side: pump a window of requests, verify every response.
    let t0 = Instant::now();
    let window = 32u64;
    let slot_bytes = 128u64;
    let mut sent = 0u32;
    let mut done = 0u32;
    let mut in_flight: std::collections::HashMap<u16, u32> = Default::default();
    while done < REQUESTS {
        while sent < REQUESTS && (in_flight.len() as u64) < window {
            let slot = data_base + (sent as u64 % window) * slot_bytes * 2;
            let msg = format!("msg-{sent:06}");
            driver.mem.write(slot, msg.as_bytes());
            let head = driver
                .send(&[
                    BufferSpec::readable(slot, msg.len() as u32),
                    BufferSpec::writable(slot + slot_bytes, msg.len() as u32),
                ])
                .expect("window < ring");
            in_flight.insert(head, sent);
            sent += 1;
        }
        if let Some(used) = driver.try_recv() {
            let n = in_flight.remove(&(used.id as u16)).expect("known head");
            let slot = data_base + (n as u64 % window) * slot_bytes * 2;
            let got = driver.mem.read_vec(slot + slot_bytes, used.len as usize);
            assert_eq!(got, format!("MSG-{n:06}").into_bytes(), "echo corrupted");
            done += 1;
        } else {
            thread::yield_now();
        }
    }
    let elapsed = t0.elapsed();
    assert_eq!(worker.join().unwrap(), REQUESTS);

    println!(
        "software back-end served {REQUESTS} requests across two threads in {elapsed:.2?}\n\
         ({:.0} req/s through the same split-ring code the FPGA model walks\n\
         over PCIe — swap the worker for the VirtIO controller and the driver\n\
         side does not change a line)",
        REQUESTS as f64 / elapsed.as_secs_f64()
    );
}
