//! Latency sweep: a compact rendition of the paper's whole evaluation —
//! Fig. 3 distributions, the Fig. 4/5 breakdowns, and Table I — in one
//! run.
//!
//! ```sh
//! cargo run --release --example latency_sweep            # 5 000 packets/cell
//! cargo run --release --example latency_sweep -- 50000   # paper scale
//! ```

use virtio_fpga::experiments::{self, ExperimentParams};
use virtio_fpga::{render_breakdown, render_table1, DriverKind};

fn main() {
    let packets = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);
    let params = ExperimentParams {
        packets,
        seed: 42,
        threads: vf_sim::default_threads(),
        shards: 1,
    };
    eprintln!("running the 2 × 5 measurement matrix ({packets} packets per cell)...");
    let t0 = std::time::Instant::now();
    let mut matrix = experiments::run_matrix(params);
    eprintln!("matrix done in {:.2?}\n", t0.elapsed());

    println!("== Fig. 3: round-trip latency distribution ==");
    for row in experiments::fig3(&mut matrix) {
        println!(
            "{:>5}B  VirtIO mean {:>5.1} sd {:>4.1} | XDMA mean {:>5.1} sd {:>4.1}   VirtIO |{}|",
            row.payload,
            row.virtio.mean_us,
            row.virtio.std_us,
            row.xdma.mean_us,
            row.xdma.std_us,
            row.virtio_hist.sparkline()
        );
        println!("{:>66} XDMA   |{}|", "", row.xdma_hist.sparkline());
    }

    println!("\n== Fig. 4 ==");
    let rows: Vec<_> = experiments::fig4(&mut matrix)
        .into_iter()
        .map(|r| (r.payload, r.sw, r.hw))
        .collect();
    println!("{}", render_breakdown(DriverKind::Virtio, &rows));

    println!("== Fig. 5 ==");
    let rows: Vec<_> = experiments::fig5(&mut matrix)
        .into_iter()
        .map(|r| (r.payload, r.sw, r.hw))
        .collect();
    println!("{}", render_breakdown(DriverKind::Xdma, &rows));

    println!("== Table I ==");
    let rows: Vec<_> = experiments::table1(&mut matrix)
        .into_iter()
        .map(|r| (r.payload, r.virtio, r.xdma))
        .collect();
    println!("{}", render_table1(&rows));

    println!(
        "Recommendation check (paper §V): VirtIO wins p95/p99 tails; the\n\
         advantage fades at p99.9 where rare host stalls hit both drivers."
    );
}
