//! Driver-bypass offload (§III-A): "an additional interface on the
//! VirtIO controller that allows the user logic to request data
//! transfers to/from host memory bypassing the VirtIO driver."
//!
//! Demonstrates a streaming offload: the FPGA pulls a work buffer from
//! host memory, reduces it in fabric, and pushes the result back — no
//! virtqueue, no doorbell, no interrupt, no syscall. Compares per-op
//! latency against the full driver path.
//!
//! ```sh
//! cargo run --release --example bypass_offload
//! ```

use vf_fpga::user_logic::UdpEcho;
use vf_fpga::{Persona, VirtioFpgaDevice};
use vf_pcie::{HostMemory, LinkConfig, PcieLink};
use vf_sim::Time;
use vf_virtio::net::VirtioNetConfig;
use virtio_fpga::experiments::{self, ExperimentParams};

fn main() {
    // The standard experiment-grade comparison table first.
    let rows = experiments::bypass(ExperimentParams {
        packets: 3_000,
        seed: 42,
        threads: vf_sim::default_threads(),
        shards: 1,
    });
    println!("bypass DMA vs full driver path:");
    println!(
        "{:>7} {:>10} {:>10} {:>12} {:>22}",
        "size", "read(us)", "write(us)", "roundtrip", "driver path 1KiB (us)"
    );
    for r in &rows {
        println!(
            "{:>6}B {:>10.2} {:>10.2} {:>12.2} {:>22.1}",
            r.size, r.read_us, r.write_us, r.round_trip_us, r.driver_path_us
        );
    }

    // A concrete offload: sum 16 KiB of telemetry in fabric and write an
    // 8-byte result back, repeatedly, measuring sustained rate.
    let mut mem = HostMemory::testbed_default();
    let mut link = PcieLink::new(LinkConfig::gen2_x2());
    let mut device = VirtioFpgaDevice::new(
        Persona::Net {
            cfg: VirtioNetConfig::testbed_default(),
        },
        0,
        &[64, 64],
        Box::new(UdpEcho::default()),
    );
    const CHUNK: usize = 16 * 1024;
    let src = mem.alloc(CHUNK, 4096);
    let dst = mem.alloc(8, 8);
    let data: Vec<u8> = (0..CHUNK).map(|i| (i * 37 % 251) as u8).collect();
    HostMemory::write(&mut mem, src, &data);
    let expected: u64 = data.iter().map(|&b| b as u64).sum();

    let mut now = Time::from_us(1);
    let t0 = now;
    let iters = 64u64;
    for _ in 0..iters {
        let (chunk, t_read) = device.bypass_read(now, src, CHUNK, &mem, &mut link);
        let sum: u64 = chunk.iter().map(|&b| b as u64).sum();
        assert_eq!(sum, expected);
        // Reduction in fabric: 8 bytes/cycle through an adder tree.
        let t_sum = t_read + vf_sim::FPGA_CYCLE * (CHUNK as u64 / 8);
        now = device.bypass_write(t_sum, dst, &sum.to_le_bytes(), &mut mem, &mut link);
    }
    assert_eq!(vf_virtio::GuestMemory::read_u64(&mem, dst), expected);
    let elapsed = now - t0;
    let mb = (iters as f64 * CHUNK as f64) / 1e6;
    println!(
        "\nstreaming offload: {iters} × {CHUNK} B reductions in {elapsed}, \
         {:.1} MB/s sustained, result verified in host memory",
        mb / (elapsed.as_us_f64() / 1e6)
    );
}
