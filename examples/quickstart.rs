//! Quickstart: run one VirtIO and one XDMA round-trip experiment and
//! print their latency summaries side by side.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use virtio_fpga::{DriverKind, Testbed, TestbedConfig};

fn main() {
    let packets = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);

    println!("UDP echo through the FPGA, {packets} packets per run\n");
    println!(
        "{:<7} {:>7} {:>9} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "driver", "payload", "mean(us)", "sd", "p95", "p99", "p99.9", "hw(us)", "sw(us)"
    );
    for payload in [64usize, 256, 1024] {
        for driver in [DriverKind::Virtio, DriverKind::Xdma] {
            let cfg = TestbedConfig::paper(driver, payload, packets, 42);
            let mut r = Testbed::new(cfg).run();
            assert_eq!(r.verify_failures, 0, "echo verification failed");
            let t = r.total_summary();
            let hw = r.hw_summary();
            let sw = r.sw_summary();
            println!(
                "{:<7} {:>6}B {:>9.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>9.1} {:>9.1}",
                driver.name(),
                payload,
                t.mean_us,
                t.std_us,
                t.p95_us,
                t.p99_us,
                t.p999_us,
                hw.mean_us,
                sw.mean_us
            );
        }
    }
    println!("\nEvery reply was verified byte-for-byte against the request.");
}
