//! Pipelined throughput: keep a window of requests in flight and watch
//! VirtIO's notification suppression (EVENT_IDX) coalesce doorbells and
//! interrupts — the regime the paper's request-response experiment never
//! enters, and the one where the XDMA character device (one blocking
//! `write()`/`read()` pair per transfer) cannot compete.
//!
//! ```sh
//! cargo run --release --example throughput
//! ```

use virtio_fpga::pipeline::{run_pipelined, xdma_serial_pps};
use virtio_fpga::{DriverKind, TestbedConfig};

fn main() {
    let packets = 10_000;
    let cfg = TestbedConfig::paper(DriverKind::Virtio, 256, packets, 42);
    let xdma_pps = xdma_serial_pps(&TestbedConfig::paper(DriverKind::Xdma, 256, 3_000, 42));

    println!("pipelined UDP echo, 256 B payload, {packets} packets per depth\n");
    println!(
        "{:>6} {:>12} {:>13} {:>15} {:>10}",
        "depth", "VirtIO pps", "latency(us)", "doorbells/pkt", "irqs/pkt"
    );
    for depth in [1usize, 2, 4, 8, 16, 32, 64] {
        let r = run_pipelined(&cfg, depth);
        assert_eq!(r.verify_failures, 0);
        println!(
            "{:>6} {:>12.0} {:>13.1} {:>15.3} {:>10.3}",
            r.depth,
            r.pps,
            r.latency.mean(),
            r.doorbells_per_packet(),
            r.irqs_per_packet()
        );
    }
    println!("\nXDMA character device (inherently serial): {xdma_pps:.0} pps at any depth.");
    println!(
        "Doorbells and interrupts fall as 1/depth: the driver publishes into a\n\
         busy ring without kicking, and the device completes batches under one\n\
         interrupt — VirtIO's EVENT_IDX machinery doing exactly what the spec\n\
         designed it to do."
    );
}
