//! virtio-blk on the FPGA: the "support for more VirtIO device types"
//! contribution. The same controller framework serves block requests —
//! 3-part chains (header / data / status) against an in-fabric disk —
//! showing how the host's *block* stack, not a custom driver, would talk
//! to an FPGA storage accelerator.
//!
//! ```sh
//! cargo run --release --example block_device
//! ```

use vf_fpga::user_logic::ConsoleEcho;
use vf_fpga::{Persona, VirtioFpgaDevice};
use vf_pcie::{HostMemory, LinkConfig, MmioAllocator, PcieLink, MSI_ADDR_BASE};
use vf_sim::Time;
use vf_virtio::block::{blk_status, BlkReqType, BlkRequest, VirtioBlkConfig, SECTOR_SIZE};
use vf_virtio::driver_queue::{BufferSpec, DriverQueue};
use vf_virtio::pci::common;
use vf_virtio::ring::VirtqueueLayout;
use vf_virtio::{feature, status, GuestMemory};

fn main() {
    const CAPACITY: u64 = 2048; // sectors = 1 MiB disk
    let mut device = VirtioFpgaDevice::new(
        Persona::Block {
            cfg: VirtioBlkConfig {
                capacity: CAPACITY,
                seg_max: 4,
            },
            disk: vf_virtio::block::MemDisk::new(CAPACITY, false),
        },
        vf_virtio::block::feature::SEG_MAX | vf_virtio::block::feature::FLUSH,
        &[128],
        Box::new(ConsoleEcho::default()),
    );

    // Enumerate: the host sees a VirtIO block device (ID 0x1042).
    let mut alloc = MmioAllocator::new();
    let info = vf_pcie::enumerate(&mut device.config_space, &mut alloc);
    println!(
        "enumerated {:04x}:{:04x} (virtio-blk), BAR0 at {:#x}",
        info.vendor,
        info.device,
        info.bar(0).unwrap().address
    );

    // Minimal virtio-blk driver bring-up via MMIO.
    let mut mem = HostMemory::testbed_default();
    let mut link = PcieLink::new(LinkConfig::gen2_x2());
    use vf_fpga::bar0;
    let st = |s: u8| s as u64;
    device.mmio_write(bar0::COMMON + common::DEVICE_STATUS, 1, 0);
    device.mmio_write(
        bar0::COMMON + common::DEVICE_STATUS,
        1,
        st(status::ACKNOWLEDGE),
    );
    device.mmio_write(
        bar0::COMMON + common::DEVICE_STATUS,
        1,
        st(status::ACKNOWLEDGE | status::DRIVER),
    );
    device.mmio_write(bar0::COMMON + common::DRIVER_FEATURE_SELECT, 4, 1);
    device.mmio_write(
        bar0::COMMON + common::DRIVER_FEATURE,
        4,
        (feature::VERSION_1 >> 32) & 0xFFFF_FFFF,
    );
    device.mmio_write(
        bar0::COMMON + common::DEVICE_STATUS,
        1,
        st(status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK),
    );
    let ring_base = mem.alloc(
        VirtqueueLayout::contiguous(0, 128).total_bytes() as usize,
        4096,
    );
    let layout = VirtqueueLayout::contiguous(ring_base, 128);
    device.mmio_write(bar0::COMMON + common::QUEUE_SELECT, 2, 0);
    device.mmio_write(bar0::COMMON + common::QUEUE_SIZE, 2, 128);
    device.mmio_write(bar0::COMMON + common::QUEUE_MSIX_VECTOR, 2, 0);
    device.mmio_write(bar0::COMMON + common::QUEUE_DESC_LO, 4, layout.desc);
    device.mmio_write(bar0::COMMON + common::QUEUE_DRIVER_LO, 4, layout.avail);
    device.mmio_write(bar0::COMMON + common::QUEUE_DEVICE_LO, 4, layout.used);
    device.mmio_write(bar0::COMMON + common::QUEUE_ENABLE, 2, 1);
    device.mmio_write(
        bar0::COMMON + common::DEVICE_STATUS,
        1,
        st(status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK | status::DRIVER_OK),
    );
    device.msix_enable();
    device.msix.program(0, MSI_ADDR_BASE, 0x50);
    let cap_sectors = device.mmio_read(bar0::DEVICE_CFG, 8);
    println!(
        "device config: capacity {cap_sectors} sectors ({} KiB)\n",
        cap_sectors * 512 / 1024
    );

    let mut q = DriverQueue::new(&mut mem, layout, false);
    let hdr = mem.alloc(16, 16);
    let stat = mem.alloc(1, 1);
    let data = mem.alloc(SECTOR_SIZE, 64);

    // Write a recognizable pattern to sectors 0..8, read them back, then
    // flush.
    let mut now = Time::from_us(5);
    for sector in 0..8u64 {
        let payload: Vec<u8> = (0..SECTOR_SIZE)
            .map(|i| ((i as u64 + sector * 13) % 251) as u8)
            .collect();
        GuestMemory::write(&mut mem, data, &payload);
        BlkRequest::write_header(&mut mem, hdr, BlkReqType::Out, sector);
        q.add_and_publish(
            &mut mem,
            &[
                BufferSpec::readable(hdr, 16),
                BufferSpec::readable(data, SECTOR_SIZE as u32),
                BufferSpec::writable(stat, 1),
            ],
        )
        .unwrap();
        let out = device.process_block_notify(now, 0, &mut mem, &mut link);
        let done = &out.completions[0];
        assert!(done.irq_at.is_some(), "completion must raise MSI-X");
        assert_eq!(done.status, blk_status::OK);
        assert_eq!(mem.slice(stat, 1)[0], blk_status::OK);
        q.pop_used(&mut mem).unwrap();
        now = out.done_at + Time::from_us(2);
    }
    println!("wrote 8 sectors");

    let mut verified = 0;
    for sector in 0..8u64 {
        BlkRequest::write_header(&mut mem, hdr, BlkReqType::In, sector);
        q.add_and_publish(
            &mut mem,
            &[
                BufferSpec::readable(hdr, 16),
                BufferSpec::writable(data, SECTOR_SIZE as u32),
                BufferSpec::writable(stat, 1),
            ],
        )
        .unwrap();
        let out = device.process_block_notify(now, 0, &mut mem, &mut link);
        assert_eq!(out.completions[0].status, blk_status::OK);
        let got = mem.slice(data, SECTOR_SIZE).to_vec();
        let expect: Vec<u8> = (0..SECTOR_SIZE)
            .map(|i| ((i as u64 + sector * 13) % 251) as u8)
            .collect();
        assert_eq!(got, expect, "sector {sector} corrupted");
        verified += 1;
        q.pop_used(&mut mem).unwrap();
        now = out.done_at + Time::from_us(2);
    }
    println!("read back and verified {verified} sectors");

    BlkRequest::write_header(&mut mem, hdr, BlkReqType::Flush, 0);
    q.add_and_publish(
        &mut mem,
        &[BufferSpec::readable(hdr, 16), BufferSpec::writable(stat, 1)],
    )
    .unwrap();
    let out = device.process_block_notify(now, 0, &mut mem, &mut link);
    assert_eq!(out.completions[0].status, blk_status::OK);
    q.pop_used(&mut mem).unwrap();
    let Persona::Block { disk, .. } = &device.persona else {
        unreachable!()
    };
    println!(
        "flush acknowledged (disk flushes: {}); {} block requests served in {}",
        disk.flushes, device.stats.blk_requests, out.done_at
    );
}
