//! VirtIO console device — the device type of the prior work \[14\] this
//! paper extends. The same FPGA framework serves a completely different
//! host subsystem (hvc/tty instead of the network stack): only the
//! device-specific config structure and the per-buffer header handling
//! change, which is the portability argument of the paper's §IV-B.
//!
//! ```sh
//! cargo run --release --example virtio_console
//! ```

use vf_virtio::DeviceType;
use virtio_fpga::{DriverKind, Testbed, TestbedConfig};

fn main() {
    let packets = 3_000;
    println!("console echo through the FPGA VirtIO framework ({packets} writes)\n");
    println!(
        "{:<15} {:>8} {:>9} {:>8} {:>8}",
        "device", "payload", "mean(us)", "p95", "p99"
    );
    for payload in [16usize, 64, 256] {
        for device_type in [DeviceType::Console, DeviceType::Net] {
            let mut cfg = TestbedConfig::paper(DriverKind::Virtio, payload, packets, 7);
            cfg.options.device_type = device_type;
            let mut r = Testbed::new(cfg).run();
            assert_eq!(r.verify_failures, 0);
            let s = r.total_summary();
            println!(
                "{:<15} {:>7}B {:>9.1} {:>8.1} {:>8.1}",
                device_type.name(),
                payload,
                s.mean_us,
                s.p95_us,
                s.p99_us
            );
        }
    }
    println!(
        "\nThe console path is faster: no UDP/IP encapsulation (42 bytes saved\n\
         per direction), no checksum work, and a much shallower host stack —\n\
         while the FPGA-side framework is byte-for-byte the same controller."
    );
}
