//! The packed-virtqueue extension (VirtIO 1.2 §2.8): the same
//! request-response exchange as the split ring, with the structural
//! DMA-operation comparison that motivates a packed-ring revision of the
//! paper's FPGA controller.
//!
//! ```sh
//! cargo run --release --example packed_ring
//! ```

use vf_pcie::{LinkConfig, PcieLink};
use vf_sim::Time;
use vf_virtio::packed::{dma_ops_per_transfer, PackedBuffer, PackedDeviceQueue, PackedDriverQueue};
use vf_virtio::{GuestMemory, VecMemory};

fn main() {
    let mut mem = VecMemory::new(1 << 20);
    let mut drv = PackedDriverQueue::new(0x1000, 64);
    let mut dev = PackedDeviceQueue::new(0x1000, 64);

    // Push 1000 request/response chains through the packed ring.
    let mut served = 0u32;
    for i in 0..1000u64 {
        let req = 0x10_000 + (i % 32) * 512;
        let resp = req + 256;
        mem.write(req, &i.to_le_bytes());
        let id = drv
            .add(
                &mut mem,
                &[
                    PackedBuffer {
                        addr: req,
                        len: 8,
                        writable: false,
                    },
                    PackedBuffer {
                        addr: resp,
                        len: 8,
                        writable: true,
                    },
                ],
            )
            .expect("ring has room");
        let chain = dev.try_take(&mem).expect("chain visible");
        assert_eq!(chain.id, id);
        // Device echoes the request into the response buffer.
        let data = mem.read_vec(chain.bufs[0].0, 8);
        mem.write(chain.bufs[1].0, &data);
        dev.complete(&mut mem, &chain, 8);
        let used = drv.pop_used(&mem).expect("completion visible");
        assert_eq!(used.len, 8);
        assert_eq!(mem.read_vec(resp, 8), i.to_le_bytes());
        served += 1;
    }
    println!("packed ring: {served} chains served, all verified\n");

    // The structural argument: device DMA round trips per transfer.
    println!("device DMA operations per 2-descriptor transfer (reads, writes):");
    let (sr, sw) = dma_ops_per_transfer(2, false);
    let (pr, pw) = dma_ops_per_transfer(2, true);
    println!("  split ring : {sr} reads, {sw} writes");
    println!("  packed ring: {pr} reads, {pw} writes");

    // Priced at this testbed's link: what a packed controller would save.
    let mut link = PcieLink::new(LinkConfig::gen2_x2());
    let read_rtt = link.dma_read(Time::ZERO, 0, 16) - Time::ZERO;
    let saved_reads = (sr - pr) as u64;
    println!(
        "\nat {read_rtt} per descriptor-sized device read, a packed-ring\n\
         controller saves ≈ {} of FPGA-side latency per transfer — a concrete\n\
         prediction for the framework's next revision (cf. Fig. 4's hardware\n\
         share).",
        read_rtt * saved_reads
    );
}
